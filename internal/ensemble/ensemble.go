// Package ensemble implements the detector-combination analysis of the
// paper's Section 7: what diversity does and does not buy.
//
// Two instruments are provided. Coverage algebra combines per-detector
// performance maps (union for "deploy both, alarm on either", intersection
// for "alarm only when both agree") and measures the gain one detector adds
// to another — the paper's findings that Stide's coverage is a subset of the
// Markov detector's, and that Stide+L&B yields no improvement at all.
// Alarm suppression implements the paper's operational recipe: use the
// rare-sensitive Markov detector to detect, and Stide — which only ever
// alarms on foreign sequences — to veto the Markov detector's rare-sequence
// false alarms.
package ensemble

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/eval"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// UnionCoverage combines two performance maps cell-wise by the better
// outcome: the coverage of running both detectors and alarming when either
// registers a maximal response.
func UnionCoverage(a, b *eval.Map) (*eval.Map, error) {
	return mergeCoverage(a, b, func(x, y eval.Outcome) eval.Outcome {
		if x >= y {
			return x
		}
		return y
	})
}

// IntersectCoverage combines two performance maps cell-wise by the worse
// outcome: the coverage of alarming only when both detectors register a
// maximal response.
func IntersectCoverage(a, b *eval.Map) (*eval.Map, error) {
	return mergeCoverage(a, b, func(x, y eval.Outcome) eval.Outcome {
		if x <= y {
			return x
		}
		return y
	})
}

func mergeCoverage(a, b *eval.Map, pick func(x, y eval.Outcome) eval.Outcome) (*eval.Map, error) {
	if a.MinSize != b.MinSize || a.MaxSize != b.MaxSize ||
		a.MinWindow != b.MinWindow || a.MaxWindow != b.MaxWindow {
		return nil, fmt.Errorf("ensemble: maps cover different grids: %s [%d,%d]x[%d,%d] vs %s [%d,%d]x[%d,%d]",
			a.Detector, a.MinSize, a.MaxSize, a.MinWindow, a.MaxWindow,
			b.Detector, b.MinSize, b.MaxSize, b.MinWindow, b.MaxWindow)
	}
	m, err := eval.NewMap(a.Detector+"+"+b.Detector, a.MinSize, a.MaxSize, a.MinWindow, a.MaxWindow)
	if err != nil {
		return nil, err
	}
	for size := a.MinSize; size <= a.MaxSize; size++ {
		for window := a.MinWindow; window <= a.MaxWindow; window++ {
			ca, cb := a.At(size, window), b.At(size, window)
			if ca.Outcome == eval.Undefined && cb.Outcome == eval.Undefined {
				continue
			}
			out := pick(ca.Outcome, cb.Outcome)
			resp := ca.MaxResponse
			if cb.MaxResponse > resp {
				resp = cb.MaxResponse
			}
			if err := m.Set(eval.Assessment{
				Detector:    m.Detector,
				Window:      window,
				AnomalySize: size,
				MaxResponse: resp,
				Outcome:     out,
			}); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// Gain returns the cells where adding detector b to detector a turns a
// non-detection into a detection: cells Capable in b but not in a. An empty
// gain is the paper's Stide+L&B null result; a gain confined to the
// DW = AS-1 diagonal is its Stide+Markov edge result.
func Gain(a, b *eval.Map) [][2]int {
	var out [][2]int
	for _, cell := range b.DetectionRegion() {
		if a.Outcome(cell[0], cell[1]) != eval.Capable {
			out = append(out, cell)
		}
	}
	return out
}

// SuppressionResult compares a primary detector alone against the primary
// gated by a suppressor, on one test stream with one injected anomaly.
type SuppressionResult struct {
	// Primary and Suppressed are the alarm statistics before and after
	// gating. Alarm positions of the two detectors are matched by overlap
	// of the stream elements they cover.
	Primary    eval.AlarmStats
	Suppressed eval.AlarmStats
}

// Suppress runs the primary and suppressor detectors (already trained) over
// the placement's stream at their respective thresholds and keeps only the
// primary's alarms that overlap some suppressor alarm — the paper's "alarms
// raised by the Markov-based detector, and not raised by Stide, may be
// ignored as false alarms".
func Suppress(primary, suppressor detector.Detector, p inject.Placement, primaryThreshold, suppressorThreshold float64) (SuppressionResult, error) {
	before, err := eval.AssessAlarms(primary, p, primaryThreshold)
	if err != nil {
		return SuppressionResult{}, err
	}
	primaryResp, err := primary.Score(p.Stream)
	if err != nil {
		return SuppressionResult{}, err
	}
	supResp, err := suppressor.Score(p.Stream)
	if err != nil {
		return SuppressionResult{}, err
	}
	covered, err := alarmCoverage(supResp, suppressor.Extent(), suppressorThreshold, len(p.Stream))
	if err != nil {
		return SuppressionResult{}, err
	}

	lo, hi, ok := p.IncidentSpan(primary.Extent())
	if !ok {
		return SuppressionResult{}, fmt.Errorf("ensemble: incident span empty for %s(DW=%d)", primary.Name(), primary.Window())
	}
	if hi >= len(primaryResp) {
		hi = len(primaryResp) - 1
	}
	after := eval.AlarmStats{
		Detector:  primary.Name() + "&" + suppressor.Name(),
		Window:    primary.Window(),
		Threshold: primaryThreshold,
		Positions: before.Positions,
	}
	for _, a := range eval.Alarms(primaryResp, primaryThreshold) {
		if !overlapsCovered(covered, a.Position, primary.Extent()) {
			continue // vetoed by the suppressor
		}
		if a.Position >= lo && a.Position <= hi {
			after.SpanAlarms++
		} else {
			after.FalseAlarms++
		}
	}
	after.Hit = after.SpanAlarms > 0
	return SuppressionResult{Primary: before, Suppressed: after}, nil
}

// alarmCoverage marks every stream element covered by a suppressor alarm.
func alarmCoverage(responses []float64, extent int, threshold float64, streamLen int) ([]bool, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("ensemble: suppressor threshold %v outside (0,1]", threshold)
	}
	covered := make([]bool, streamLen)
	for _, a := range eval.Alarms(responses, threshold) {
		for i := a.Position; i < a.Position+extent && i < streamLen; i++ {
			covered[i] = true
		}
	}
	return covered, nil
}

// overlapsCovered reports whether any element of [pos, pos+extent) is
// covered by a suppressor alarm.
func overlapsCovered(covered []bool, pos, extent int) bool {
	for i := pos; i < pos+extent && i < len(covered); i++ {
		if covered[i] {
			return true
		}
	}
	return false
}

// TrainAll trains each detector on the training stream, failing on the
// first error. It is a convenience for the combination experiments, which
// deploy several detectors on identical data.
func TrainAll(train seq.Stream, dets ...detector.Detector) error {
	for _, d := range dets {
		if err := d.Train(train); err != nil {
			return fmt.Errorf("ensemble: training %s(DW=%d): %w", d.Name(), d.Window(), err)
		}
	}
	return nil
}

// TrainAllCorpus is TrainAll over a shared training-database cache: every
// detector fetches its per-width databases from dbs (built at most once per
// width) instead of rebuilding them — the combination experiments train
// several detectors at one window on identical data, so the saving is a
// full stream pass per extra detector.
func TrainAllCorpus(dbs *seq.Corpus, dets ...detector.Detector) error {
	for _, d := range dets {
		if err := detector.TrainWith(d, dbs); err != nil {
			return fmt.Errorf("ensemble: training %s(DW=%d): %w", d.Name(), d.Window(), err)
		}
	}
	return nil
}
