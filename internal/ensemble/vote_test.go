package ensemble

import (
	"testing"

	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// voterOf builds a Voter from scripted members with threshold 1 each.
func voterOf(quorum int, members ...*scripted) *Voter {
	dets := make([]detector.Detector, len(members))
	ths := make([]float64, len(members))
	for i, m := range members {
		dets[i] = m
		ths[i] = 1
	}
	return &Voter{Members: dets, Thresholds: ths, Quorum: quorum}
}

func respAt(n int, positions ...int) []float64 {
	out := make([]float64, n)
	for _, p := range positions {
		out[p] = 1
	}
	return out
}

func TestVoterValidate(t *testing.T) {
	m := &scripted{name: "m", window: 2, extent: 2, trained: true, responses: make([]float64, 10)}
	bad := []*Voter{
		{},
		{Members: []detector.Detector{m}, Thresholds: []float64{1, 1}, Quorum: 1},
		{Members: []detector.Detector{m}, Thresholds: []float64{0}, Quorum: 1},
		{Members: []detector.Detector{m}, Thresholds: []float64{1}, Quorum: 0},
		{Members: []detector.Detector{m}, Thresholds: []float64{1}, Quorum: 2},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("voter %d accepted", i)
		}
	}
	if err := voterOf(1, m).Validate(); err != nil {
		t.Errorf("valid voter rejected: %v", err)
	}
}

func TestVotesAndQuorum(t *testing.T) {
	// 20-element stream; extent-3 members.
	a := &scripted{name: "a", window: 3, extent: 3, trained: true, responses: respAt(18, 5, 10)}
	b := &scripted{name: "b", window: 3, extent: 3, trained: true, responses: respAt(18, 6, 14)}
	stream := make(seq.Stream, 20)

	union := voterOf(1, a, b)
	alarmed, err := union.AlarmedElements(stream)
	if err != nil {
		t.Fatal(err)
	}
	// a covers 5-7 and 10-12; b covers 6-8 and 14-16 → union 5-8,10-12,14-16.
	want := []int{5, 6, 7, 8, 10, 11, 12, 14, 15, 16}
	if len(alarmed) != len(want) {
		t.Fatalf("union alarmed %v, want %v", alarmed, want)
	}
	for i := range want {
		if alarmed[i] != want[i] {
			t.Fatalf("union alarmed %v, want %v", alarmed, want)
		}
	}

	both := voterOf(2, a, b)
	alarmed, err = both.AlarmedElements(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Intersection of coverage: elements 6-7.
	if len(alarmed) != 2 || alarmed[0] != 6 || alarmed[1] != 7 {
		t.Fatalf("quorum-2 alarmed %v, want [6 7]", alarmed)
	}
}

func TestAssessVote(t *testing.T) {
	// Anomaly at elements [6,8); member a alarms over 5-7 (hit), member b
	// over 14-16 (false alarm region).
	a := &scripted{name: "a", window: 3, extent: 3, trained: true, responses: respAt(18, 5)}
	b := &scripted{name: "b", window: 3, extent: 3, trained: true, responses: respAt(18, 14)}
	p := inject.Placement{Stream: make(seq.Stream, 20), Start: 6, AnomalyLen: 2}

	union := voterOf(1, a, b)
	stats, err := union.AssessVote(p)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Hit {
		t.Errorf("union missed: %+v", stats)
	}
	if stats.AlarmedInSpan != 2 { // elements 6,7
		t.Errorf("in-span elements %d, want 2", stats.AlarmedInSpan)
	}
	if stats.AlarmedOutside != 4 { // element 5 + 14,15,16
		t.Errorf("outside elements %d, want 4", stats.AlarmedOutside)
	}
	if stats.Elements != 18 {
		t.Errorf("Elements = %d, want 18", stats.Elements)
	}
	if rate := stats.FalseAlarmRate(); rate != 4.0/18 {
		t.Errorf("rate %v", rate)
	}

	// Quorum 2 suppresses everything here (members never overlap).
	both := voterOf(2, a, b)
	stats, err = both.AssessVote(p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hit || stats.AlarmedOutside != 0 {
		t.Errorf("quorum-2 stats %+v, want silence", stats)
	}
}

func TestVoteStatsEmpty(t *testing.T) {
	var s VoteStats
	if s.FalseAlarmRate() != 0 {
		t.Errorf("empty rate %v", s.FalseAlarmRate())
	}
}

func TestVotesPropagatesErrors(t *testing.T) {
	untrained := &scripted{name: "u", window: 3, extent: 3}
	v := voterOf(1, untrained)
	if _, err := v.Votes(make(seq.Stream, 10)); err == nil {
		t.Errorf("untrained member accepted")
	}
}
