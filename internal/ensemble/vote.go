package ensemble

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/eval"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// Voter combines several trained detectors by k-of-n voting over stream
// elements: an element is alarmed when at least Quorum detectors raise an
// alarm whose covered elements include it. Quorum 1 is the union
// ("alarm on either") and Quorum n the conjunction (the paper's
// suppression pipeline generalized beyond one primary and one veto).
type Voter struct {
	// Members are the trained detectors; all must be trained on the same
	// data for the vote to be meaningful.
	Members []detector.Detector
	// Thresholds holds each member's detection threshold, index-aligned
	// with Members.
	Thresholds []float64
	// Quorum is the number of members that must alarm on an element.
	Quorum int
}

// Validate reports structural errors.
func (v *Voter) Validate() error {
	if len(v.Members) == 0 {
		return fmt.Errorf("ensemble: voter with no members")
	}
	if len(v.Thresholds) != len(v.Members) {
		return fmt.Errorf("ensemble: %d thresholds for %d members", len(v.Thresholds), len(v.Members))
	}
	for i, t := range v.Thresholds {
		if t <= 0 || t > 1 {
			return fmt.Errorf("ensemble: member %d threshold %v outside (0,1]", i, t)
		}
	}
	if v.Quorum < 1 || v.Quorum > len(v.Members) {
		return fmt.Errorf("ensemble: quorum %d outside [1,%d]", v.Quorum, len(v.Members))
	}
	return nil
}

// Votes returns, per stream element, how many members alarm on it.
func (v *Voter) Votes(stream seq.Stream) ([]int, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	votes := make([]int, len(stream))
	for i, det := range v.Members {
		responses, err := det.Score(stream)
		if err != nil {
			return nil, fmt.Errorf("ensemble: member %s(DW=%d): %w", det.Name(), det.Window(), err)
		}
		extent := det.Extent()
		covered := make([]bool, len(stream))
		for _, a := range eval.Alarms(responses, v.Thresholds[i]) {
			for j := a.Position; j < a.Position+extent && j < len(stream); j++ {
				covered[j] = true
			}
		}
		for j, c := range covered {
			if c {
				votes[j]++
			}
		}
	}
	return votes, nil
}

// AlarmedElements returns the element indices reaching the quorum.
func (v *Voter) AlarmedElements(stream seq.Stream) ([]int, error) {
	votes, err := v.Votes(stream)
	if err != nil {
		return nil, err
	}
	var out []int
	for i, n := range votes {
		if n >= v.Quorum {
			out = append(out, i)
		}
	}
	return out, nil
}

// VoteStats tallies a voter's output against one placement's ground truth
// at the element level.
type VoteStats struct {
	// Quorum echoes the voter's quorum.
	Quorum int
	// Hit reports at least one alarmed element inside the anomaly.
	Hit bool
	// AlarmedInSpan and AlarmedOutside count alarmed elements inside and
	// outside the injected anomaly.
	AlarmedInSpan, AlarmedOutside int
	// Elements is the number of out-of-anomaly elements, the denominator
	// of FalseAlarmRate.
	Elements int
}

// FalseAlarmRate returns alarmed out-of-anomaly elements per out-of-anomaly
// element.
func (s VoteStats) FalseAlarmRate() float64 {
	if s.Elements == 0 {
		return 0
	}
	return float64(s.AlarmedOutside) / float64(s.Elements)
}

// AssessVote evaluates the voter on a placement.
func (v *Voter) AssessVote(p inject.Placement) (VoteStats, error) {
	alarmed, err := v.AlarmedElements(p.Stream)
	if err != nil {
		return VoteStats{}, err
	}
	stats := VoteStats{
		Quorum:   v.Quorum,
		Elements: len(p.Stream) - p.AnomalyLen,
	}
	for _, i := range alarmed {
		if i >= p.Start && i < p.Start+p.AnomalyLen {
			stats.AlarmedInSpan++
		} else {
			stats.AlarmedOutside++
		}
	}
	stats.Hit = stats.AlarmedInSpan > 0
	return stats, nil
}
