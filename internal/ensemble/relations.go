package ensemble

import (
	"fmt"
	"io"

	"adiv/internal/eval"
)

// Relation classifies how one detector's detection coverage relates to
// another's — the structural fact that determines whether combining them
// adds coverage, merely corroborates, or does nothing (paper Sections 7-8).
type Relation int

// Relation values.
const (
	// Equal: identical detection regions.
	Equal Relation = iota + 1
	// SubsetOf: a's detection region is strictly inside b's (a alarms only
	// where b also alarms — a can serve as a false-alarm suppressor for b).
	SubsetOf
	// SupersetOf: a strictly contains b.
	SupersetOf
	// Overlapping: each detects cells the other misses.
	Overlapping
	// Disjoint: no common detected cell (including the case where one or
	// both detect nothing).
	Disjoint
)

// String renders the relation for reports.
func (r Relation) String() string {
	switch r {
	case Equal:
		return "equal"
	case SubsetOf:
		return "subset"
	case SupersetOf:
		return "superset"
	case Overlapping:
		return "overlapping"
	case Disjoint:
		return "disjoint"
	default:
		return fmt.Sprintf("relation(%d)", int(r))
	}
}

// Relate classifies the coverage relation of a with respect to b.
func Relate(a, b *eval.Map) Relation {
	aCells := detectionSet(a)
	bCells := detectionSet(b)
	common := 0
	for c := range aCells {
		if bCells[c] {
			common++
		}
	}
	switch {
	case common == len(aCells) && common == len(bCells) && common > 0:
		return Equal
	case len(aCells) == 0 && len(bCells) == 0:
		return Equal
	case common == len(aCells) && len(aCells) > 0:
		return SubsetOf
	case common == len(bCells) && len(bCells) > 0:
		return SupersetOf
	case common > 0:
		return Overlapping
	default:
		return Disjoint
	}
}

func detectionSet(m *eval.Map) map[[2]int]bool {
	set := make(map[[2]int]bool)
	for _, c := range m.DetectionRegion() {
		set[c] = true
	}
	return set
}

// WriteRelationMatrix renders the pairwise coverage relations of the given
// maps as a table: row detector's coverage relative to the column
// detector's.
func WriteRelationMatrix(w io.Writer, maps []*eval.Map) error {
	if _, err := fmt.Fprintf(w, "%-10s", ""); err != nil {
		return err
	}
	for _, m := range maps {
		if _, err := fmt.Fprintf(w, " %-12s", m.Detector); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, a := range maps {
		if _, err := fmt.Fprintf(w, "%-10s", a.Detector); err != nil {
			return err
		}
		for _, b := range maps {
			rel := "-"
			if a != b {
				rel = Relate(a, b).String()
			}
			if _, err := fmt.Fprintf(w, " %-12s", rel); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
