package ensemble

import (
	"testing"

	"adiv/internal/detector"
	"adiv/internal/eval"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// scripted is a canned detector for combination tests.
type scripted struct {
	name      string
	window    int
	extent    int
	trained   bool
	responses []float64
}

func (s *scripted) Name() string           { return s.name }
func (s *scripted) Window() int            { return s.window }
func (s *scripted) Extent() int            { return s.extent }
func (s *scripted) Train(seq.Stream) error { s.trained = true; return nil }
func (s *scripted) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(s.trained, s.extent, test); err != nil {
		return nil, err
	}
	out := make([]float64, len(test)-s.extent+1)
	copy(out, s.responses)
	return out, nil
}

var _ detector.Detector = (*scripted)(nil)

func mkMap(t *testing.T, name string, capable [][2]int) *eval.Map {
	t.Helper()
	m, err := eval.NewMap(name, 2, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for size := 2; size <= 4; size++ {
		for dw := 2; dw <= 4; dw++ {
			o := eval.Blind
			for _, c := range capable {
				if c[0] == size && c[1] == dw {
					o = eval.Capable
				}
			}
			m.Set(eval.Assessment{Detector: name, AnomalySize: size, Window: dw, Outcome: o})
		}
	}
	return m
}

func TestUnionIntersectGain(t *testing.T) {
	a := mkMap(t, "a", [][2]int{{2, 2}, {2, 3}})
	b := mkMap(t, "b", [][2]int{{2, 3}, {3, 3}})

	union, err := UnionCoverage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := union.CountOutcome(eval.Capable); got != 3 {
		t.Errorf("union detects %d cells, want 3", got)
	}
	inter, err := IntersectCoverage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := inter.CountOutcome(eval.Capable); got != 1 {
		t.Errorf("intersection detects %d cells, want 1", got)
	}
	gain := Gain(a, b)
	if len(gain) != 1 || gain[0] != [2]int{3, 3} {
		t.Errorf("Gain = %v, want [[3 3]]", gain)
	}
	if got := Gain(a, a); got != nil {
		t.Errorf("self-gain = %v, want empty", got)
	}
}

func TestMergeRejectsMismatchedGrids(t *testing.T) {
	a := mkMap(t, "a", nil)
	b, err := eval.NewMap("b", 2, 5, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnionCoverage(a, b); err == nil {
		t.Errorf("union of mismatched grids succeeded")
	}
	if _, err := IntersectCoverage(a, b); err == nil {
		t.Errorf("intersection of mismatched grids succeeded")
	}
}

func TestSuppress(t *testing.T) {
	// Stream of 50 with anomaly at [25,27); both detectors extent 3.
	p := inject.Placement{Stream: make(seq.Stream, 50), Start: 25, AnomalyLen: 2}
	// Span for extent 3: [23, 26].
	primaryResp := make([]float64, 48)
	primaryResp[5] = 1  // false alarm, unsupported by the suppressor
	primaryResp[10] = 1 // false alarm, supported (suppressor also alarms)
	primaryResp[24] = 1 // span alarm, supported
	suppressorResp := make([]float64, 48)
	suppressorResp[11] = 1 // overlaps the primary alarm at 10 (elements 10-13)
	suppressorResp[24] = 1

	primary := &scripted{name: "p", window: 3, extent: 3, trained: true, responses: primaryResp}
	suppressor := &scripted{name: "s", window: 3, extent: 3, trained: true, responses: suppressorResp}

	r, err := Suppress(primary, suppressor, p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Primary.FalseAlarms != 2 || !r.Primary.Hit {
		t.Errorf("primary stats %+v", r.Primary)
	}
	if r.Suppressed.FalseAlarms != 1 {
		t.Errorf("suppressed false alarms = %d, want 1 (the overlap-supported one)", r.Suppressed.FalseAlarms)
	}
	if !r.Suppressed.Hit {
		t.Errorf("suppression lost the hit")
	}
	if r.Suppressed.Detector != "p&s" {
		t.Errorf("suppressed detector name %q", r.Suppressed.Detector)
	}
}

func TestSuppressVetoesEverythingWhenSuppressorSilent(t *testing.T) {
	p := inject.Placement{Stream: make(seq.Stream, 30), Start: 15, AnomalyLen: 2}
	primaryResp := make([]float64, 28)
	primaryResp[3] = 1
	primaryResp[15] = 1
	primary := &scripted{name: "p", window: 3, extent: 3, trained: true, responses: primaryResp}
	silent := &scripted{name: "s", window: 3, extent: 3, trained: true, responses: make([]float64, 28)}

	r, err := Suppress(primary, silent, p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Suppressed.FalseAlarms != 0 || r.Suppressed.SpanAlarms != 0 || r.Suppressed.Hit {
		t.Errorf("silent suppressor left alarms: %+v", r.Suppressed)
	}
}

func TestSuppressThresholdValidation(t *testing.T) {
	p := inject.Placement{Stream: make(seq.Stream, 30), Start: 15, AnomalyLen: 2}
	d := &scripted{name: "p", window: 3, extent: 3, trained: true, responses: make([]float64, 28)}
	if _, err := Suppress(d, d, p, 0, 1); err == nil {
		t.Errorf("primary threshold 0 accepted")
	}
	if _, err := Suppress(d, d, p, 1, 2); err == nil {
		t.Errorf("suppressor threshold 2 accepted")
	}
}

func TestSuppressDifferentExtents(t *testing.T) {
	// Primary extent 4 (a Markov-style DW=3 detector), suppressor extent 3:
	// overlap matching is by covered elements, so the differing extents
	// must still align.
	p := inject.Placement{Stream: make(seq.Stream, 40), Start: 20, AnomalyLen: 3}
	primaryResp := make([]float64, 37)
	primaryResp[19] = 1 // covers elements 19-22: includes anomaly
	suppressorResp := make([]float64, 38)
	suppressorResp[21] = 1 // covers elements 21-23: overlaps primary's alarm

	primary := &scripted{name: "markovish", window: 3, extent: 4, trained: true, responses: primaryResp}
	suppressor := &scripted{name: "stideish", window: 3, extent: 3, trained: true, responses: suppressorResp}
	r, err := Suppress(primary, suppressor, p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Suppressed.Hit {
		t.Errorf("cross-extent overlap not recognized: %+v", r.Suppressed)
	}
}

func TestTrainAll(t *testing.T) {
	a := &scripted{name: "a", window: 2, extent: 2}
	b := &scripted{name: "b", window: 2, extent: 2}
	if err := TrainAll(make(seq.Stream, 10), a, b); err != nil {
		t.Fatal(err)
	}
	if !a.trained || !b.trained {
		t.Errorf("TrainAll skipped a detector")
	}
}
