package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Execution tracing: where the Timing registry answers "how much time did
// name X accumulate", the Tracer answers "what happened when" — every traced
// region becomes one SpanEvent with monotonic start/end timestamps, a
// span/parent ID pair, a category, an optional worker lane, and key=value
// attributes, recorded into a bounded ring. The ring is exported as Chrome
// trace_event JSON (Perfetto / chrome://tracing), served live as /tracez,
// and mined by `diagnose -trace` for critical-path and occupancy analysis.
//
// Tracing is opt-in and layered alongside the aggregate Timings: a Registry
// with no tracer attached keeps the exact pre-trace behavior, and a nil
// *Tracer (like every other handle in this package) is a no-op costing a
// pointer test and zero allocations.

// TraceSchemaVersion identifies the trace span schema. The /tracez document
// and the Chrome export's otherData carry it; diagnose -trace keys on it.
const TraceSchemaVersion = "adiv.trace/v1"

// DefaultTraceSpans is the ring capacity runflags installs for -trace: deep
// enough for a full paper-scale grid (4 maps × 112 cells plus trainings,
// corpus phases, and scoring spans) with generous headroom; when a run
// overflows it anyway, the ring drops oldest spans and counts the loss in
// trace/dropped rather than growing without bound.
const DefaultTraceSpans = 1 << 16

// Span lanes. Non-negative lanes are scheduler worker indices: the spans of
// one lane never overlap (a worker executes one task at a time), so the
// Chrome export can render each lane as a thread track and occupancy
// analysis can treat a lane's busy time as an interval union.
const (
	// LaneAsync marks a span with no worker identity (a singleflight DB
	// build, a detector Score inside a cell). These export as Chrome async
	// events: they may overlap freely and get their own tracks.
	LaneAsync = -1
	// LaneMain marks the run's main goroutine (corpus synthesis, figure
	// assembly) — sequential by construction, exported as the "main" thread.
	LaneMain = -2
)

// TraceAttr is one key=value span annotation.
type TraceAttr struct {
	Key   string
	Value string
}

// SpanEvent is one completed traced region (or instant marker) as stored in
// the tracer ring. Start is a monotonic offset from the tracer's epoch; the
// wall-clock epoch itself is carried by the Tracer so exports can anchor
// the timeline.
type SpanEvent struct {
	// TraceID identifies the tracer (and so the run) the span belongs to —
	// the merge key when per-shard traces are stitched together.
	TraceID uint64
	// ID is the span's unique (per-trace) identifier; Parent is the ID of
	// the enclosing span, 0 for roots.
	ID     uint64
	Parent uint64
	// Name is the span name, matching the Timing name at upgraded call
	// sites ("cell/stide", "corpus/build/train").
	Name string
	// Cat is the span category ("cell", "train", "replay", "corpus", ...);
	// Perfetto filters on it and the cost rollups group by it.
	Cat string
	// Lane is the worker lane (see LaneAsync/LaneMain).
	Lane int
	// Instant marks a zero-duration point event (an escalated alarm).
	Instant bool
	// Start is the monotonic offset from the tracer epoch; Dur the span's
	// duration (0 for instants).
	Start time.Duration
	Dur   time.Duration
	// Attrs are the span's key=value annotations (detector, window, size).
	Attrs []TraceAttr
}

// Tracer records completed spans into a bounded ring. All methods are safe
// for concurrent use and no-ops on a nil receiver; span recording takes one
// short mutex hold (no allocation beyond the span's own event), so tracing
// stays cheap even under the scheduler's full worker fan-out.
type Tracer struct {
	mu      sync.Mutex
	ring    []SpanEvent
	next    int
	total   int64
	dropped int64
	sink    func(SpanEvent)

	epoch   time.Time
	now     func() time.Time
	ids     atomic.Uint64
	traceID uint64

	// Telemetry handles; nil when uninstrumented.
	cSpans   *Counter
	cDropped *Counter
}

// NewTracer returns a tracer retaining the last capacity spans (capacity
// < 1 keeps DefaultTraceSpans). The trace ID derives from the wall-clock
// epoch, so concurrent shards of one logical run get distinct IDs.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultTraceSpans
	}
	t := &Tracer{
		ring: make([]SpanEvent, capacity),
		now:  time.Now,
	}
	t.epoch = t.now()
	t.traceID = uint64(t.epoch.UnixNano())
	return t
}

// SetClock replaces the tracer's time source (tests use a deterministic
// fake) and restarts the epoch — and with it the derived trace ID — from
// the new clock.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.epoch = now()
	t.traceID = uint64(t.epoch.UnixNano())
}

// SetSink installs fn to receive every recorded span, called outside the
// ring lock. runflags uses it to tee spans into the NDJSON event log; nil
// removes the sink.
func (t *Tracer) SetSink(fn func(SpanEvent)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Instrument records tracer telemetry into reg: the trace/spans counter
// (spans ever recorded) and the trace/dropped counter (spans overwritten by
// ring wraparound). A nil registry disables instrumentation.
func (t *Tracer) Instrument(reg *Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if reg == nil {
		t.cSpans, t.cDropped = nil, nil
		return
	}
	t.cSpans = reg.Counter("trace/spans")
	t.cDropped = reg.Counter("trace/dropped")
}

// TraceID returns the tracer's trace identifier (0 on a nil tracer).
func (t *Tracer) TraceID() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// Epoch returns the wall-clock instant span offsets are measured from.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Stats returns how many spans were ever recorded and how many of those
// were dropped (overwritten) by ring wraparound.
func (t *Tracer) Stats() (total, dropped int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.dropped
}

// since returns the current monotonic offset from the epoch.
func (t *Tracer) since() time.Duration {
	t.mu.Lock()
	now, epoch := t.now, t.epoch
	t.mu.Unlock()
	return now().Sub(epoch)
}

// Start begins a root span. Returns nil (a no-op handle) on a nil tracer or
// empty name; the span reaches the ring only on End.
func (t *Tracer) Start(name, category string) *TraceSpan {
	if t == nil || name == "" {
		return nil
	}
	return &TraceSpan{
		t:     t,
		start: t.since(),
		ev: SpanEvent{
			ID:   t.ids.Add(1),
			Name: name,
			Cat:  category,
			Lane: LaneAsync,
		},
	}
}

// Instant records a zero-duration point event (an alarm escalation, a
// noteworthy state change) at the current time.
func (t *Tracer) Instant(name, category string, attrs ...TraceAttr) {
	if t == nil || name == "" {
		return
	}
	t.record(SpanEvent{
		ID:    t.ids.Add(1),
		Name:  name,
		Cat:   category,
		Lane:  LaneAsync,
		Start: t.since(),
		Attrs: attrs,
	}, true)
}

// record pushes one completed event into the ring, overwriting (and
// counting as dropped) the oldest retained span on wraparound.
func (t *Tracer) record(ev SpanEvent, instant bool) {
	ev.Instant = instant
	t.mu.Lock()
	ev.TraceID = t.traceID
	overwrote := t.total >= int64(len(t.ring))
	if overwrote {
		t.dropped++
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	sink := t.sink
	t.mu.Unlock()
	t.cSpans.Inc()
	if overwrote {
		t.cDropped.Inc()
	}
	if sink != nil {
		sink(ev)
	}
}

// Snapshot returns copies of the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	retained := int(t.total)
	start := 0
	if t.total >= int64(n) {
		retained = n
		start = t.next
	}
	out := make([]SpanEvent, 0, retained)
	for i := 0; i < retained; i++ {
		ev := t.ring[(start+i)%n]
		ev.Attrs = append([]TraceAttr(nil), ev.Attrs...)
		out = append(out, ev)
	}
	return out
}

// TraceSpan is one in-flight traced region. Like *Span it is single-
// goroutine state (the goroutine that started it mutates and ends it); the
// tracer's ring provides the cross-goroutine synchronization. All methods
// are no-ops on a nil receiver, and End is idempotent.
type TraceSpan struct {
	t     *Tracer
	start time.Duration
	ev    SpanEvent
	ended bool
}

// SetLane assigns the span's worker lane (see LaneAsync/LaneMain).
func (s *TraceSpan) SetLane(lane int) {
	if s == nil {
		return
	}
	s.ev.Lane = lane
}

// Lane returns the span's lane (LaneAsync on a nil span).
func (s *TraceSpan) Lane() int {
	if s == nil {
		return LaneAsync
	}
	return s.ev.Lane
}

// SetAttr annotates the span with one key=value pair.
func (s *TraceSpan) SetAttr(key, value string) {
	if s == nil || key == "" {
		return
	}
	s.ev.Attrs = append(s.ev.Attrs, TraceAttr{Key: key, Value: value})
}

// SetAttrInt annotates the span with one integer-valued attribute.
func (s *TraceSpan) SetAttrInt(key string, value int) {
	s.SetAttr(key, strconv.Itoa(value))
}

// Child starts a nested span: parent ID, lane, and (when category is empty)
// category are inherited.
func (s *TraceSpan) Child(name, category string) *TraceSpan {
	if s == nil {
		return nil
	}
	if category == "" {
		category = s.ev.Cat
	}
	c := s.t.Start(name, category)
	if c != nil {
		c.ev.Parent = s.ev.ID
		c.ev.Lane = s.ev.Lane
	}
	return c
}

// End completes the span and records it into the tracer ring. The second
// and later calls are no-ops, mirroring (*Span).End.
func (s *TraceSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	ev := s.ev
	ev.Start = s.start
	if d := s.t.since() - s.start; d > 0 {
		ev.Dur = d
	}
	s.t.record(ev, false)
}
