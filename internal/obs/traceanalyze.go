package obs

import (
	"sort"
	"time"
)

// Trace analysis: the numbers a timeline viewer can't surface directly.
// AnalyzeTrace digests a span set (live from a Tracer, or read back from an
// exported Chrome trace) into the report `diagnose -trace` prints: the
// critical path bounding the run's wall clock, per-worker occupancy, the
// spans dominating self-time, and per-detector-family cost rollups.

// TraceReport is the digest of one span set.
type TraceReport struct {
	// SpanCount and InstantCount partition the analyzed events.
	SpanCount    int
	InstantCount int
	// CellSpans and ReplaySpans count grid-cell evaluations ("cell"
	// category) and checkpoint replays ("replay" category).
	CellSpans   int
	ReplaySpans int
	// Wall is the observed wall clock: latest span end minus earliest span
	// start.
	Wall time.Duration
	// CriticalPath is the longest chain (by summed duration) of strictly
	// sequential spans — every span starts at or after its predecessor's
	// end — and CriticalTotal its summed duration. It is a lower bound on
	// the run's wall clock no amount of extra workers can beat, so the
	// spans on it are where optimization effort pays.
	CriticalPath  []SpanEvent
	CriticalTotal time.Duration
	// Lanes reports per-worker busy time and occupancy.
	Lanes []LaneStat
	// TopSelf ranks span names by self-time (duration minus direct
	// children's duration).
	TopSelf []NameStat
	// Families rolls span cost up by the "detector" attribute.
	Families []FamilyStat
}

// LaneStat is one worker lane's (or the main goroutine's) utilization.
type LaneStat struct {
	// Lane is the worker lane (LaneMain for the main goroutine).
	Lane  int
	Spans int
	// Busy is the union of the lane's span intervals; Occupancy is
	// Busy/Wall (0 when the wall clock is unknown).
	Busy      time.Duration
	Occupancy float64
}

// NameStat aggregates the spans sharing one name.
type NameStat struct {
	Name  string
	Count int
	// Total sums the spans' durations; Self subtracts each span's direct
	// children, so a parent that merely waits on children ranks low.
	Total time.Duration
	Self  time.Duration
}

// FamilyStat rolls up the cost attributed to one detector family.
type FamilyStat struct {
	Detector string
	Spans    int
	// Train, Cell and Other split Total by span category ("train";
	// "cell"+"replay"; everything else except "score").
	Train time.Duration
	Cell  time.Duration
	Other time.Duration
	// Score is reported separately and excluded from Total: scoring spans
	// run inside cell evaluations, so adding them would double-count.
	Score time.Duration
	Total time.Duration
}

// AnalyzeTrace digests spans into a TraceReport. topN bounds the TopSelf
// ranking (topN < 1 keeps 10).
func AnalyzeTrace(spans []SpanEvent, topN int) TraceReport {
	if topN < 1 {
		topN = 10
	}
	rep := TraceReport{}

	// Work spans: everything with extent. Instants annotate the timeline
	// but carry no cost.
	var work []SpanEvent
	for _, ev := range spans {
		if ev.Instant {
			rep.InstantCount++
			continue
		}
		rep.SpanCount++
		switch ev.Cat {
		case "cell":
			rep.CellSpans++
		case "replay":
			rep.ReplaySpans++
		}
		work = append(work, ev)
	}
	if len(work) == 0 {
		return rep
	}

	minStart, maxEnd := work[0].Start, work[0].Start+work[0].Dur
	for _, ev := range work[1:] {
		if ev.Start < minStart {
			minStart = ev.Start
		}
		if end := ev.Start + ev.Dur; end > maxEnd {
			maxEnd = end
		}
	}
	rep.Wall = maxEnd - minStart

	rep.CriticalPath, rep.CriticalTotal = criticalPath(work)
	rep.Lanes = laneStats(work, rep.Wall)
	rep.TopSelf = selfTimes(work, topN)
	rep.Families = familyStats(work)
	return rep
}

// criticalPath finds the maximum-duration chain of strictly sequential
// spans via an O(n log n) sweep: process spans in start order, keeping a
// running best over every span already ended, so chain(i) = dur(i) +
// best{chain(j) : end(j) <= start(i)}. Zero-duration spans (checkpoint
// replays, degenerate clocks) are excluded — they carry no cost and their
// start==end degeneracy would break the sweep's ordering invariant.
func criticalPath(work []SpanEvent) ([]SpanEvent, time.Duration) {
	var nodes []SpanEvent
	for _, ev := range work {
		if ev.Dur > 0 {
			nodes = append(nodes, ev)
		}
	}
	if len(nodes) == 0 {
		return nil, 0
	}
	byStart := make([]int, len(nodes))
	byEnd := make([]int, len(nodes))
	for i := range nodes {
		byStart[i], byEnd[i] = i, i
	}
	sort.Slice(byStart, func(a, b int) bool { return nodes[byStart[a]].Start < nodes[byStart[b]].Start })
	sort.Slice(byEnd, func(a, b int) bool {
		ea := nodes[byEnd[a]].Start + nodes[byEnd[a]].Dur
		eb := nodes[byEnd[b]].Start + nodes[byEnd[b]].Dur
		return ea < eb
	})

	chain := make([]time.Duration, len(nodes))
	prev := make([]int, len(nodes))
	bestVal, bestIdx := time.Duration(0), -1
	k := 0
	for _, i := range byStart {
		for k < len(byEnd) {
			j := byEnd[k]
			if nodes[j].Start+nodes[j].Dur > nodes[i].Start {
				break
			}
			if chain[j] > bestVal {
				bestVal, bestIdx = chain[j], j
			}
			k++
		}
		chain[i] = nodes[i].Dur + bestVal
		prev[i] = bestIdx
	}

	tail, total := 0, chain[0]
	for i, v := range chain {
		if v > total {
			tail, total = i, v
		}
	}
	var path []SpanEvent
	for i := tail; i >= 0; i = prev[i] {
		path = append(path, nodes[i])
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, total
}

// laneStats computes per-lane busy time as the union of span intervals —
// worker lanes never overlap by construction, but the union keeps the
// number honest if a merged shard trace violates that.
func laneStats(work []SpanEvent, wall time.Duration) []LaneStat {
	type interval struct{ lo, hi time.Duration }
	perLane := map[int][]interval{}
	counts := map[int]int{}
	for _, ev := range work {
		if ev.Lane == LaneAsync {
			continue
		}
		perLane[ev.Lane] = append(perLane[ev.Lane], interval{ev.Start, ev.Start + ev.Dur})
		counts[ev.Lane]++
	}
	lanes := make([]int, 0, len(perLane))
	for lane := range perLane {
		lanes = append(lanes, lane)
	}
	sort.Ints(lanes)
	out := make([]LaneStat, 0, len(lanes))
	for _, lane := range lanes {
		ivs := perLane[lane]
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
		var busy time.Duration
		curLo, curHi := ivs[0].lo, ivs[0].hi
		for _, iv := range ivs[1:] {
			if iv.lo > curHi {
				busy += curHi - curLo
				curLo, curHi = iv.lo, iv.hi
				continue
			}
			if iv.hi > curHi {
				curHi = iv.hi
			}
		}
		busy += curHi - curLo
		st := LaneStat{Lane: lane, Spans: counts[lane], Busy: busy}
		if wall > 0 {
			st.Occupancy = float64(busy) / float64(wall)
		}
		out = append(out, st)
	}
	return out
}

// selfTimes ranks span names by self-time (duration minus direct children).
func selfTimes(work []SpanEvent, topN int) []NameStat {
	childDur := map[uint64]time.Duration{}
	for _, ev := range work {
		if ev.Parent != 0 {
			childDur[ev.Parent] += ev.Dur
		}
	}
	agg := map[string]*NameStat{}
	for _, ev := range work {
		st := agg[ev.Name]
		if st == nil {
			st = &NameStat{Name: ev.Name}
			agg[ev.Name] = st
		}
		st.Count++
		st.Total += ev.Dur
		self := ev.Dur - childDur[ev.ID]
		if self > 0 {
			st.Self += self
		}
	}
	out := make([]NameStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Self != out[b].Self {
			return out[a].Self > out[b].Self
		}
		return out[a].Name < out[b].Name
	})
	if len(out) > topN {
		out = out[:topN]
	}
	return out
}

// familyStats rolls up cost by the "detector" span attribute.
func familyStats(work []SpanEvent) []FamilyStat {
	agg := map[string]*FamilyStat{}
	for _, ev := range work {
		family := ""
		for _, a := range ev.Attrs {
			if a.Key == "detector" {
				family = a.Value
				break
			}
		}
		if family == "" {
			continue
		}
		st := agg[family]
		if st == nil {
			st = &FamilyStat{Detector: family}
			agg[family] = st
		}
		st.Spans++
		switch ev.Cat {
		case "train":
			st.Train += ev.Dur
			st.Total += ev.Dur
		case "cell", "replay":
			st.Cell += ev.Dur
			st.Total += ev.Dur
		case "score":
			st.Score += ev.Dur
		default:
			st.Other += ev.Dur
			st.Total += ev.Dur
		}
	}
	out := make([]FamilyStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Total != out[b].Total {
			return out[a].Total > out[b].Total
		}
		return out[a].Detector < out[b].Detector
	})
	return out
}
