// Live introspection server: an opt-in embedded HTTP endpoint that makes a
// long grid run inspectable while it executes. The batch drivers bind it
// with the shared -status flag; a production deployment of the online
// pipeline would keep it up for the life of the process.
//
//	/metrics        Prometheus text exposition of the live registry
//	/runz           JSON run status: config, grid progress, throughput, ETA,
//	                live quantile sketches
//	/eventz         the last N NDJSON events (ring-buffer tee of -progress);
//	                ?n=K limits the response to the last K lines
//	/alertz         the last N alert-journal records (adiv.alerts/v1 NDJSON);
//	                ?n=K limits the response to the last K records
//	/tracez         JSON snapshot of the -trace span ring (adiv.trace/v1)
//	/debug/pprof/*  net/http/pprof for in-flight CPU/heap/goroutine profiles
//	/healthz        liveness probe; appends "degraded: ..." lines while
//	                watchdog rules fire
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// DefaultEventRingLines is the /eventz retention the drivers install: deep
// enough to hold several heartbeats plus the cell events between them.
const DefaultEventRingLines = 256

// drainTimeout bounds graceful shutdown: in-flight scrapes get this long to
// finish before the listener is torn down hard.
const drainTimeout = 3 * time.Second

// EventRing is a bounded ring buffer of NDJSON event lines implementing
// io.Writer, installed as an EventLog sink (each Emit issues exactly one
// Write per line) so /eventz can serve the tail of the event stream without
// unbounded memory. Safe for concurrent use; a nil ring discards writes and
// serves nothing.
type EventRing struct {
	mu    sync.Mutex
	lines [][]byte
	next  int
	total int64
}

// NewEventRing returns a ring retaining the last n event lines (n < 1 keeps
// DefaultEventRingLines).
func NewEventRing(n int) *EventRing {
	if n < 1 {
		n = DefaultEventRingLines
	}
	return &EventRing{lines: make([][]byte, n)}
}

// Write retains a copy of one event line. It never fails: telemetry must
// not fail the run, and the copy is required because EventLog reuses its
// line buffer across emissions.
func (r *EventRing) Write(p []byte) (int, error) {
	if r == nil || len(p) == 0 {
		return len(p), nil
	}
	r.mu.Lock()
	line := r.lines[r.next]
	r.lines[r.next] = append(line[:0], p...)
	r.next = (r.next + 1) % len(r.lines)
	r.total++
	r.mu.Unlock()
	return len(p), nil
}

// Total returns how many lines were ever written.
func (r *EventRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteTo copies the retained lines, oldest first, to w.
func (r *EventRing) WriteTo(w io.Writer) (int64, error) {
	return r.WriteTail(w, -1)
}

// WriteTail copies the last n retained lines, oldest first, to w; n < 0
// means every retained line, n == 0 writes nothing.
func (r *EventRing) WriteTail(w io.Writer, n int) (int64, error) {
	if r == nil || n == 0 {
		return 0, nil
	}
	r.mu.Lock()
	size := len(r.lines)
	skip := 0
	if n >= 0 {
		// Count the populated tail so the limit skips the right number of
		// leading lines even before the ring fills.
		populated := 0
		for i := 0; i < size; i++ {
			if len(r.lines[(r.next+i)%size]) > 0 {
				populated++
			}
		}
		if populated > n {
			skip = populated - n
		}
	}
	out := make([]byte, 0, 1024)
	for i := 0; i < size; i++ {
		line := r.lines[(r.next+i)%size]
		if len(line) == 0 {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		out = append(out, line...)
	}
	r.mu.Unlock()
	written, err := w.Write(out)
	return int64(written), err
}

// Endpoints bundles the sources the status server serves. Any field may be
// nil: /metrics then serves an empty exposition, /runz an empty
// schema-tagged status, /eventz and /alertz nothing, /tracez an empty
// schema-tagged trace, /healthz plain "ok".
type Endpoints struct {
	Registry *Registry
	Progress *Progress
	Events   *EventRing
	Tracer   *Tracer
	Alerts   *AlertJournal
	Watchdog *Watchdog
}

// tailParam parses the shared ?n=K tail limit of the NDJSON endpoints
// (-1 when absent). It writes the error response itself on a bad value.
func tailParam(w http.ResponseWriter, req *http.Request, endpoint string) (n int, ok bool) {
	raw := req.URL.Query().Get("n")
	if raw == "" {
		return -1, true
	}
	parsed, err := strconv.Atoi(raw)
	if err != nil || parsed < 0 {
		http.Error(w, fmt.Sprintf("%s: bad n=%q (want a non-negative integer)", endpoint, raw), http.StatusBadRequest)
		return 0, false
	}
	return parsed, true
}

// NewHandler returns the status server's route table over the given
// sources. The handler is what StartServer serves; tests mount it on
// httptest servers directly. The live views (/runz, /eventz, /alertz)
// carry Cache-Control: no-store — a cached run status is worse than none.
func NewHandler(ep Endpoints) http.Handler {
	reg, prog, ring, tracer := ep.Registry, ep.Progress, ep.Events, ep.Tracer
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n") //nolint:errcheck // best-effort probe
		// Watchdog degradation reports in the body, not the status code: a
		// silent detector means the run needs attention, not a restart.
		for _, d := range ep.Watchdog.Degraded() {
			fmt.Fprintf(w, "degraded: %s\n", d)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		reg.WriteProm(w) //nolint:errcheck // client gone mid-scrape
	})
	mux.HandleFunc("/runz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		status := prog.Status()
		status.Quantiles = reg.SketchSnapshots()
		data, err := json.MarshalIndent(status, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n')) //nolint:errcheck
	})
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, req *http.Request) {
		n, ok := tailParam(w, req, "eventz")
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		ring.WriteTail(w, n) //nolint:errcheck
	})
	mux.HandleFunc("/alertz", func(w http.ResponseWriter, req *http.Request) {
		n, ok := tailParam(w, req, "alertz")
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		ep.Alerts.WriteTail(w, n) //nolint:errcheck
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(tracer.Status(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n')) //nolint:errcheck
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running status server. A nil server is a no-op throughout,
// so the disabled path (-status unset) starts no goroutine and costs
// nothing.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	addr string
}

// StartServer binds addr (host:0 picks a free port) and serves the status
// endpoints on a background goroutine until Close.
func StartServer(addr string, ep Endpoints) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: NewHandler(ep), ReadHeaderTimeout: 5 * time.Second},
		addr: ln.Addr().String(),
	}
	go s.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address ("" on a nil server) — the value a
// run announces so operators can curl a :0-bound server.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Close drains the server gracefully: in-flight scrapes (a curl racing the
// final barrier) get drainTimeout to complete, then the listener closes
// hard. Safe to call on a nil server and idempotent.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err == context.DeadlineExceeded {
		err = s.srv.Close()
	}
	s.srv = nil
	return err
}
