package obs

import "time"

// Span is one timed region of a run. Spans are nestable: a child span's
// name is the parent's name plus "/child", so the snapshot reads as a flat
// call tree ("corpus/build", "corpus/build/train", ...). End records the
// elapsed duration into the registry's Timing of the same name. Spans are
// not reusable; nil spans (from a nil registry) are no-ops throughout.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// Span starts a timed region. Returns nil (a no-op span) on a nil registry.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	return &Span{reg: r, name: name, start: now()}
}

// Child starts a nested span named parent/name.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.reg.Span(s.name + "/" + name)
}

// Name returns the span's full name ("" on a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End records the span's elapsed duration into the registry and returns it.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.reg.mu.RLock()
	now := s.reg.now
	s.reg.mu.RUnlock()
	d := now().Sub(s.start)
	s.reg.Timing(s.name).Record(d)
	return d
}

// RecordDuration records an externally measured duration under name.
func (r *Registry) RecordDuration(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.Timing(name).Record(d)
}
