package obs

import "time"

// Span is one timed region of a run. Spans are nestable: a child span's
// name is the parent's name plus "/child", so the snapshot reads as a flat
// call tree ("corpus/build", "corpus/build/train", ...). End records the
// elapsed duration into the registry's Timing of the same name exactly
// once — later End calls are no-ops. Spans are not reusable; nil spans
// (from a nil registry) are no-ops throughout.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
	trace *TraceSpan
	ended bool
}

// Span starts a timed region. Returns nil (a no-op span) on a nil registry.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	return &Span{reg: r, name: name, start: now()}
}

// SpanTraced is Span's traced variant: alongside the aggregate Timing it
// records one SpanEvent (with the given category) into the registry's
// attached tracer, so upgrading a call site is a one-line change. With no
// tracer attached — or on a nil registry — it reduces exactly to Span, so
// untraced runs pay nothing new.
func (r *Registry) SpanTraced(name, category string) *Span {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	now, tracer := r.now, r.tracer
	r.mu.RUnlock()
	return &Span{reg: r, name: name, start: now(), trace: tracer.Start(name, category)}
}

// Child starts a nested span named parent/name. A traced parent's child is
// traced too, inheriting the parent's span ID, lane, and category.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.reg.Span(s.name + "/" + name)
	if c != nil && s.trace != nil {
		c.trace = s.trace.Child(s.name+"/"+name, "")
	}
	return c
}

// Name returns the span's full name ("" on a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetLane assigns the traced span's worker lane; a no-op without a tracer.
func (s *Span) SetLane(lane int) {
	if s == nil {
		return
	}
	s.trace.SetLane(lane)
}

// SetAttr annotates the traced span; a no-op without a tracer.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.trace.SetAttr(key, value)
}

// SetAttrInt annotates the traced span with an integer attribute.
func (s *Span) SetAttrInt(key string, value int) {
	if s == nil {
		return
	}
	s.trace.SetAttrInt(key, value)
}

// Trace returns the span's trace handle (nil without a tracer), for call
// sites that want to hang trace-only children off a timed span.
func (s *Span) Trace() *TraceSpan {
	if s == nil {
		return nil
	}
	return s.trace
}

// End records the span's elapsed duration into the registry (and, when
// traced, the tracer ring) and returns it. Only the first call records:
// calling End twice used to double-count the duration in the Timing, so
// later calls are no-ops returning 0.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	s.trace.End()
	s.reg.mu.RLock()
	now := s.reg.now
	s.reg.mu.RUnlock()
	d := now().Sub(s.start)
	s.reg.Timing(s.name).Record(d)
	return d
}

// RecordDuration records an externally measured duration under name.
func (r *Registry) RecordDuration(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.Timing(name).Record(d)
}
