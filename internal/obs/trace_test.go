package obs

import (
	"sync"
	"testing"
	"time"
)

// manualTracer returns a tracer on a hand-advanced clock plus the advance
// function; the epoch is fixed, so span offsets are exact.
func manualTracer(capacity int) (*Tracer, func(time.Duration)) {
	cur := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr := NewTracer(capacity)
	tr.SetClock(func() time.Time { return cur })
	return tr, func(d time.Duration) { cur = cur.Add(d) }
}

func TestTracerSpanRecords(t *testing.T) {
	tr, advance := manualTracer(16)
	advance(10 * time.Millisecond)
	sp := tr.Start("cell/stide", "cell")
	sp.SetLane(3)
	sp.SetAttr("detector", "stide")
	sp.SetAttrInt("window", 5)
	advance(25 * time.Millisecond)
	sp.End()

	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("Snapshot returned %d spans, want 1", len(spans))
	}
	ev := spans[0]
	if ev.Name != "cell/stide" || ev.Cat != "cell" {
		t.Errorf("span name/cat = %q/%q", ev.Name, ev.Cat)
	}
	if ev.Lane != 3 {
		t.Errorf("lane = %d, want 3", ev.Lane)
	}
	if ev.Start != 10*time.Millisecond || ev.Dur != 25*time.Millisecond {
		t.Errorf("start/dur = %v/%v, want 10ms/25ms", ev.Start, ev.Dur)
	}
	if ev.ID == 0 || ev.Parent != 0 {
		t.Errorf("id/parent = %d/%d, want nonzero root", ev.ID, ev.Parent)
	}
	if ev.TraceID != tr.TraceID() {
		t.Errorf("span trace id %d != tracer's %d", ev.TraceID, tr.TraceID())
	}
	want := []TraceAttr{{"detector", "stide"}, {"window", "5"}}
	if len(ev.Attrs) != len(want) {
		t.Fatalf("attrs = %v, want %v", ev.Attrs, want)
	}
	for i, a := range want {
		if ev.Attrs[i] != a {
			t.Errorf("attr[%d] = %v, want %v", i, ev.Attrs[i], a)
		}
	}
}

func TestTracerChildInherits(t *testing.T) {
	tr, advance := manualTracer(16)
	parent := tr.Start("corpus/build", "corpus")
	parent.SetLane(LaneMain)
	child := parent.Child("corpus/build/train", "")
	other := parent.Child("corpus/build/index", "index")
	advance(time.Millisecond)
	child.End()
	other.End()
	parent.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	c, o, p := spans[0], spans[1], spans[2]
	if c.Parent != p.ID || o.Parent != p.ID {
		t.Errorf("children parents = %d,%d, want %d", c.Parent, o.Parent, p.ID)
	}
	if c.Lane != LaneMain || o.Lane != LaneMain {
		t.Errorf("children lanes = %d,%d, want inherited %d", c.Lane, o.Lane, LaneMain)
	}
	if c.Cat != "corpus" {
		t.Errorf("empty-category child cat = %q, want inherited %q", c.Cat, "corpus")
	}
	if o.Cat != "index" {
		t.Errorf("explicit-category child cat = %q, want %q", o.Cat, "index")
	}
}

func TestTracerInstant(t *testing.T) {
	tr, advance := manualTracer(16)
	advance(5 * time.Millisecond)
	tr.Instant("online/escalated", "alarm", TraceAttr{Key: "position", Value: "42"})
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d events, want 1", len(spans))
	}
	ev := spans[0]
	if !ev.Instant || ev.Dur != 0 {
		t.Errorf("instant=%v dur=%v, want true/0", ev.Instant, ev.Dur)
	}
	if ev.Start != 5*time.Millisecond {
		t.Errorf("start = %v, want 5ms", ev.Start)
	}
	if len(ev.Attrs) != 1 || ev.Attrs[0].Value != "42" {
		t.Errorf("attrs = %v", ev.Attrs)
	}
}

// TestTraceSpanEndIdempotent pins the End contract: the second End records
// nothing.
func TestTraceSpanEndIdempotent(t *testing.T) {
	tr, advance := manualTracer(16)
	sp := tr.Start("once", "test")
	advance(time.Millisecond)
	sp.End()
	advance(time.Millisecond)
	sp.End()
	if spans := tr.Snapshot(); len(spans) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(spans))
	}
	if total, _ := tr.Stats(); total != 1 {
		t.Errorf("total = %d, want 1", total)
	}
}

// TestTracerWraparound pins the drop policy: a full ring overwrites the
// oldest spans and counts every overwrite, in Stats and in the trace/dropped
// registry counter.
func TestTracerWraparound(t *testing.T) {
	reg := New()
	tr, _ := manualTracer(4)
	tr.Instrument(reg)
	for i := 0; i < 6; i++ {
		tr.Instant("ev", "test", TraceAttr{Key: "i", Value: string(rune('0' + i))})
	}
	total, dropped := tr.Stats()
	if total != 6 || dropped != 2 {
		t.Fatalf("Stats = (%d, %d), want (6, 2)", total, dropped)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Oldest first, and the two oldest ("0", "1") are the ones dropped.
	for i, ev := range spans {
		if want := string(rune('0' + i + 2)); ev.Attrs[0].Value != want {
			t.Errorf("retained[%d] = %q, want %q", i, ev.Attrs[0].Value, want)
		}
	}
	if got := reg.Counter("trace/spans").Value(); got != 6 {
		t.Errorf("trace/spans = %d, want 6", got)
	}
	if got := reg.Counter("trace/dropped").Value(); got != 2 {
		t.Errorf("trace/dropped = %d, want 2", got)
	}
}

// TestTracerConcurrent drives the ring from many goroutines; the race
// detector is the real assertion, the counts are the sanity check.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := tr.Start("work", "test")
				sp.SetLane(lane)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	total, dropped := tr.Stats()
	if total != goroutines*each {
		t.Errorf("total = %d, want %d", total, goroutines*each)
	}
	if want := total - 64; dropped != want {
		t.Errorf("dropped = %d, want %d", dropped, want)
	}
	if spans := tr.Snapshot(); len(spans) != 64 {
		t.Errorf("retained %d spans, want 64 (full ring)", len(spans))
	}
}

func TestTracerSink(t *testing.T) {
	tr, advance := manualTracer(16)
	var got []SpanEvent
	tr.SetSink(func(ev SpanEvent) { got = append(got, ev) })
	sp := tr.Start("sinked", "test")
	advance(time.Millisecond)
	sp.End()
	tr.Instant("mark", "test")
	if len(got) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(got))
	}
	if got[0].Name != "sinked" || got[1].Name != "mark" {
		t.Errorf("sink order = %q, %q", got[0].Name, got[1].Name)
	}
	tr.SetSink(nil)
	tr.Instant("quiet", "test")
	if len(got) != 2 {
		t.Errorf("removed sink still saw events (%d)", len(got))
	}
}

// TestTracerNil pins the disabled path: every method on a nil tracer (and on
// the nil spans it hands out) is a no-op.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("ignored", "test")
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	sp.SetLane(1)
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 2)
	sp.Child("c", "").End()
	sp.End()
	if sp.Lane() != LaneAsync {
		t.Errorf("nil span Lane = %d, want LaneAsync", sp.Lane())
	}
	tr.Instant("ignored", "test")
	tr.SetSink(func(SpanEvent) {})
	tr.SetClock(time.Now)
	tr.Instrument(New())
	if total, dropped := tr.Stats(); total != 0 || dropped != 0 {
		t.Errorf("nil Stats = (%d, %d)", total, dropped)
	}
	if tr.TraceID() != 0 || !tr.Epoch().IsZero() || tr.Snapshot() != nil {
		t.Error("nil tracer leaked state")
	}
}

// TestTracerNilZeroAlloc pins the cost of disabled tracing: starting and
// ending a span on a nil tracer allocates nothing.
func TestTracerNilZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("cell/stide", "cell")
		sp.SetLane(1)
		sp.SetAttr("detector", "stide")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil tracer span = %.1f allocs/op, want 0", allocs)
	}
}

// TestTracerEmptyName: an empty span name is refused rather than recorded as
// an unnameable track.
func TestTracerEmptyName(t *testing.T) {
	tr, _ := manualTracer(4)
	if sp := tr.Start("", "test"); sp != nil {
		t.Error("empty-name Start returned a live span")
	}
	tr.Instant("", "test")
	if total, _ := tr.Stats(); total != 0 {
		t.Errorf("empty-name events recorded (total=%d)", total)
	}
}

func TestTracerSetClockResetsIdentity(t *testing.T) {
	tr := NewTracer(4)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr.SetClock(func() time.Time { return base })
	if got, want := tr.TraceID(), uint64(base.UnixNano()); got != want {
		t.Errorf("TraceID = %d, want %d (epoch-derived)", got, want)
	}
	if !tr.Epoch().Equal(base) {
		t.Errorf("Epoch = %v, want %v", tr.Epoch(), base)
	}
}

// TestRegistrySpanTraced covers the Registry-level wiring: with a tracer
// attached SpanTraced produces one trace span per timed span, and without
// one it reduces to Span.
func TestRegistrySpanTraced(t *testing.T) {
	reg := New()
	tr, _ := manualTracer(16)
	reg.SetTracer(tr)
	if reg.Tracer() != tr {
		t.Fatal("Tracer() did not return the attached tracer")
	}

	sp := reg.SpanTraced("cell/stide", "cell")
	sp.SetLane(2)
	sp.SetAttr("detector", "stide")
	child := sp.Child("score")
	child.End()
	sp.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d trace spans, want 2", len(spans))
	}
	if spans[0].Name != "cell/stide/score" || spans[0].Parent != spans[1].ID {
		t.Errorf("child span = %+v, parent = %+v", spans[0], spans[1])
	}
	if spans[1].Lane != 2 {
		t.Errorf("lane = %d, want 2", spans[1].Lane)
	}
	// The Timing side recorded under both names too.
	snap := reg.Snapshot()
	if len(snap.Spans) != 2 {
		t.Errorf("timings = %+v, want cell/stide and cell/stide/score", snap.Spans)
	}

	reg.SetTracer(nil)
	plain := reg.SpanTraced("untraced", "cell")
	if plain.Trace() != nil {
		t.Error("SpanTraced without tracer still produced a trace span")
	}
	plain.End()
	if total, _ := tr.Stats(); total != 2 {
		t.Errorf("detached tracer recorded more spans (total=%d)", total)
	}
}
