package obs

import (
	"math"
	"sync"
)

// Quantile sketch: a fixed-memory streaming estimator for the latency and
// response distributions the fixed-bin Histogram cannot hold. The Histogram
// covers [0,1] (detector responses); latencies are unbounded and span seven
// orders of magnitude between a 300 ns streaming push and a 10 s neural-net
// training, so the sketch buckets values on a geometric grid instead
// (DDSketch-style relative-error compression): bucket i covers
// (minValue·γ^(i-1), minValue·γ^i] with γ = (1+α)/(1-α), so any quantile
// estimate is within relative error α of a true sample value. Memory is
// fixed at construction — sketchBucketCount int64 slots (~17 KB at α = 1%)
// regardless of how many values are observed — and the observe path
// performs no allocations, the contract the online push hot path requires.

// SketchAlpha is the relative-accuracy target of every registry sketch: a
// quantile estimate q̂ satisfies |q̂ - q|/q <= SketchAlpha for any true
// sample quantile q inside the tracked range.
const SketchAlpha = 0.01

// sketchMinValue and sketchMaxValue bound the tracked magnitude range:
// [1 ns, ~32 years] when observing seconds, and comfortably past both ends
// of the response/inter-arrival scales. Values at or below sketchMinValue
// collapse into a dedicated low bucket (reported as the observed minimum);
// values above sketchMaxValue clamp into the top bucket.
const (
	sketchMinValue = 1e-9
	sketchMaxValue = 1e9
)

// Derived bucket geometry, computed once.
var (
	sketchGamma       = (1 + SketchAlpha) / (1 - SketchAlpha)
	sketchLogGammaInv = 1 / math.Log(sketchGamma)
	sketchLogMin      = math.Log(sketchMinValue)
	// sketchBucketCount covers (sketchMinValue, sketchMaxValue] on the γ
	// grid: ceil(ln(max/min)/ln γ) ≈ 2073 buckets at α = 1%.
	sketchBucketCount = int(math.Ceil((math.Log(sketchMaxValue) - sketchLogMin) * sketchLogGammaInv))
)

// Sketch is a fixed-memory streaming quantile estimator over positive
// values. Safe for concurrent use; all methods are no-ops (or zeros) on a
// nil receiver, matching the rest of the registry's disabled-path contract.
type Sketch struct {
	mu      sync.Mutex
	buckets []int64 // geometric buckets over (minValue, maxValue]
	low     int64   // observations <= sketchMinValue (including zero)
	count   int64
	sum     float64
	min     float64
	max     float64
}

// NewSketch returns an empty sketch. The bucket array is the sketch's only
// allocation; Observe never allocates.
func NewSketch() *Sketch {
	return &Sketch{buckets: make([]int64, sketchBucketCount)}
}

// Sketch returns the named quantile sketch, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Sketch(name string) *Sketch {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	s := r.sketches[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.sketches[name]; s == nil {
		s = NewSketch()
		r.sketches[name] = s
	}
	return s
}

// sketchIndex maps a value to its bucket: ceil(log_γ(v/minValue)) clamped
// into the array, so bucket i covers (minValue·γ^(i-1), minValue·γ^i] and
// the bucket's representative value minValue·2γ^i/(γ+1) is within relative
// error α of every value in it.
func sketchIndex(v float64) int {
	idx := int(math.Ceil((math.Log(v) - sketchLogMin) * sketchLogGammaInv))
	if idx < 0 {
		idx = 0
	}
	if idx >= sketchBucketCount {
		idx = sketchBucketCount - 1
	}
	return idx
}

// Observe records one value. NaN and infinities are ignored so snapshots
// always marshal; values at or below sketchMinValue (zero included — a
// sub-nanosecond duration, an exactly-zero response) land in the low bucket
// and report as the observed minimum. The path allocates nothing.
func (s *Sketch) Observe(v float64) {
	if s == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.mu.Lock()
	s.observeLocked(v)
	s.mu.Unlock()
}

// ObserveAll records a batch of values under one lock acquisition — the
// per-response telemetry path of an instrumented Score call.
func (s *Sketch) ObserveAll(vs []float64) {
	if s == nil || len(vs) == 0 {
		return
	}
	s.mu.Lock()
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		s.observeLocked(v)
	}
	s.mu.Unlock()
}

func (s *Sketch) observeLocked(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	if v <= sketchMinValue {
		s.low++
		return
	}
	s.buckets[sketchIndex(v)]++
}

// Count returns the number of observations (0 on a nil receiver).
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantile returns the estimated q-quantile (q clamped to [0,1]) of the
// observed values, within relative error SketchAlpha of a true sample
// quantile for values inside the tracked range. Returns 0 before any
// observation and on a nil receiver.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quantileLocked(q)
}

func (s *Sketch) quantileLocked(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// 1-based rank of the order statistic the quantile names.
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	// The extremes are tracked exactly, so the endpoint order statistics
	// answer exactly — including values the edge buckets clamped.
	if rank == 1 {
		return s.min
	}
	if rank >= s.count {
		return s.max
	}
	cum := s.low
	if cum >= rank {
		// The low bucket holds everything at or below sketchMinValue; the
		// observed minimum is the only honest representative.
		return s.min
	}
	for i, c := range s.buckets {
		cum += c
		if cum >= rank {
			est := sketchMinValue * 2 * math.Pow(sketchGamma, float64(i)) / (sketchGamma + 1)
			// Clamp into the observed range: edge-bucket clamping (values
			// outside the tracked magnitudes) must not report values the
			// stream never contained.
			if est < s.min {
				est = s.min
			}
			if est > s.max {
				est = s.max
			}
			return est
		}
	}
	return s.max
}

// Stats returns the sketch's serialized form under one lock, so the three
// quantiles are consistent with each other and with the count.
func (s *Sketch) Stats() SketchStats {
	if s == nil {
		return SketchStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SketchStats{
		Count: s.count,
		Sum:   s.sum,
	}
	if s.count > 0 {
		st.Min = s.min
		st.Max = s.max
		st.P50 = s.quantileLocked(0.50)
		st.P90 = s.quantileLocked(0.90)
		st.P99 = s.quantileLocked(0.99)
	}
	return st
}

// SketchStats is the serialized form of one Sketch: the summary quantiles a
// dashboard reads (p50/p90/p99), plus the exact count, sum, and extremes.
type SketchStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// SketchSnapshots returns the current stats of every registered sketch
// (nil when none, and on a nil registry) — what /runz embeds as the run's
// live quantile view.
func (r *Registry) SketchSnapshots() map[string]SketchStats {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	sketches := make(map[string]*Sketch, len(r.sketches))
	for k, v := range r.sketches {
		sketches[k] = v
	}
	r.mu.RUnlock()
	if len(sketches) == 0 {
		return nil
	}
	out := make(map[string]SketchStats, len(sketches))
	for name, s := range sketches {
		out[name] = s.Stats()
	}
	return out
}
