package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// SchemaVersion identifies the snapshot JSON schema. Downstream tooling
// (benchmark-trajectory tracking, dashboards) keys on it; field names and
// ordering are pinned by a golden test and must only change with a version
// bump. v2 added the sketches section (streaming quantile estimates).
const SchemaVersion = "adiv.obs/v2"

// Snapshot is the machine-readable state of a registry at one instant.
// encoding/json emits map keys in sorted order, so the serialized form is
// deterministic for a given registry state.
type Snapshot struct {
	Schema     string                    `json:"schema"`
	StartedAt  string                    `json:"startedAt"`
	UptimeMs   float64                   `json:"uptimeMs"`
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
	Sketches   map[string]SketchStats    `json:"sketches"`
	Spans      map[string]SpanStats      `json:"spans"`
}

// HistogramStats is the serialized form of one Histogram.
type HistogramStats struct {
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	Mean   float64 `json:"mean"`
	AtZero int64   `json:"atZero"`
	AtOne  int64   `json:"atOne"`
	Bins   []int64 `json:"bins"`
}

// SpanStats is the serialized form of one Timing (accumulated spans).
type SpanStats struct {
	Count   int64   `json:"count"`
	TotalMs float64 `json:"totalMs"`
	MeanMs  float64 `json:"meanMs"`
	MinMs   float64 `json:"minMs"`
	MaxMs   float64 `json:"maxMs"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty (but schema-tagged) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SchemaVersion,
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
		Sketches:   map[string]SketchStats{},
		Spans:      map[string]SpanStats{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	now, start := r.now, r.start
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	timings := make(map[string]*Timing, len(r.timings))
	for k, v := range r.timings {
		timings[k] = v
	}
	sketches := make(map[string]*Sketch, len(r.sketches))
	for k, v := range r.sketches {
		sketches[k] = v
	}
	r.mu.RUnlock()

	s.StartedAt = start.UTC().Format(time.RFC3339Nano)
	s.UptimeMs = durationMs(now().Sub(start))
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		h.mu.Lock()
		hs := HistogramStats{
			Count:  h.count,
			Sum:    h.sum,
			AtZero: h.atZero,
			AtOne:  h.atOne,
			Bins:   append([]int64(nil), h.bins...),
		}
		h.mu.Unlock()
		if hs.Count > 0 {
			hs.Mean = hs.Sum / float64(hs.Count)
		}
		s.Histograms[name] = hs
	}
	for name, sk := range sketches {
		s.Sketches[name] = sk.Stats()
	}
	for name, t := range timings {
		count, total, min, max := t.Stats()
		ss := SpanStats{
			Count:   count,
			TotalMs: durationMs(total),
			MinMs:   durationMs(min),
			MaxMs:   durationMs(max),
		}
		if count > 0 {
			ss.MeanMs = ss.TotalMs / float64(count)
		}
		s.Spans[name] = ss
	}
	return s
}

// WriteSnapshot marshals the current snapshot as indented JSON to w.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling snapshot: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing snapshot: %w", err)
	}
	return nil
}

// WriteSnapshotFile writes the current snapshot to path, creating or
// truncating it.
func (r *Registry) WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := r.WriteSnapshot(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return fmt.Errorf("obs: closing snapshot file: %w", cerr)
	}
	return nil
}

// durationMs converts a duration to fractional milliseconds.
func durationMs(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
