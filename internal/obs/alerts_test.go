package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func seedJournal(j *AlertJournal) {
	j.SetClock(newFakeClock(time.Second).Now)
	j.Append(AlertRecord{Position: 100, Detector: "stide", Score: 0.97, Threshold: 0.95, Disposition: DispositionRaised})
	j.Append(AlertRecord{Position: 100, Detector: "stide", Score: 0.97, Threshold: 0.95, Disposition: DispositionEscalated})
	j.Append(AlertRecord{Position: 250, Detector: "nn", Score: 0.99, Threshold: 0.95, Disposition: DispositionRaised})
	j.Append(AlertRecord{Position: 250, Detector: "nn", Score: 0.99, Threshold: 0.95, Disposition: DispositionSuppressed})
}

func TestAlertJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewAlertJournal(&buf)
	seedJournal(j)

	if j.Total() != 4 {
		t.Errorf("total = %d", j.Total())
	}
	counts := j.Counts()
	if counts[DispositionRaised] != 2 || counts[DispositionEscalated] != 1 || counts[DispositionSuppressed] != 1 {
		t.Errorf("counts = %+v", counts)
	}

	recs, err := ReadAlerts(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAlerts: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("read %d records", len(recs))
	}
	first := recs[0]
	if first.Schema != AlertSchemaVersion || first.Position != 100 || first.Detector != "stide" ||
		first.Score != 0.97 || first.Threshold != 0.95 || first.Disposition != DispositionRaised {
		t.Errorf("first record = %+v", first)
	}
	if first.TS == "" {
		t.Error("record missing timestamp")
	}
}

func TestAlertJournalRingOnly(t *testing.T) {
	j := NewAlertJournal(nil) // no durable sink; /alertz tail still works
	seedJournal(j)
	var tail bytes.Buffer
	if _, err := j.WriteTail(&tail, -1); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAlerts(&tail)
	if err != nil || len(recs) != 4 {
		t.Fatalf("tail round trip: %d recs, err %v", len(recs), err)
	}
}

func TestAlertJournalWriteTailLimit(t *testing.T) {
	j := NewAlertJournal(nil)
	seedJournal(j)
	var tail bytes.Buffer
	j.WriteTail(&tail, 1)
	recs, err := ReadAlerts(&tail)
	if err != nil || len(recs) != 1 {
		t.Fatalf("limited tail: %d recs, err %v", len(recs), err)
	}
	if recs[0].Disposition != DispositionSuppressed {
		t.Errorf("tail should keep the newest record, got %+v", recs[0])
	}
	if n, err := j.WriteTail(&tail, 0); n != 0 || err != nil {
		t.Errorf("n=0 tail wrote %d bytes, err %v", n, err)
	}
}

func TestAlertJournalNil(t *testing.T) {
	var j *AlertJournal
	j.Append(AlertRecord{}) // must not panic
	if j.Total() != 0 || j.Counts() != nil {
		t.Error("nil journal must report zeros")
	}
	if n, _ := j.WriteTail(&bytes.Buffer{}, -1); n != 0 {
		t.Error("nil journal tail must be empty")
	}
}

func TestReadAlertsTornTail(t *testing.T) {
	var buf bytes.Buffer
	j := NewAlertJournal(&buf)
	seedJournal(j)
	// A run killed mid-append leaves a torn final line: dropped, not fatal.
	torn := buf.String() + `{"schema":"adiv.alerts/v1","posi`
	recs, err := ReadAlerts(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must not fail: %v", err)
	}
	if len(recs) != 4 {
		t.Errorf("read %d records", len(recs))
	}
	// The same garbage mid-stream is corruption and must fail loudly.
	corrupt := `{"schema":"adiv.alerts/v1","posi` + "\n" + buf.String()
	if _, err := ReadAlerts(strings.NewReader(corrupt)); err == nil {
		t.Error("mid-stream corruption must fail")
	}
}

func TestReadAlertsRejectsUnknownSchema(t *testing.T) {
	in := `{"schema":"adiv.alerts/v9","position":1,"detector":"x"}` + "\n"
	if _, err := ReadAlerts(strings.NewReader(in)); err == nil {
		t.Error("unknown schema must fail")
	}
}

func TestReadAlertsFile(t *testing.T) {
	if _, err := ReadAlertsFile("testdata/definitely-missing.ndjson"); err == nil {
		t.Error("missing file must fail")
	}
}

func TestAnalyzeAlerts(t *testing.T) {
	var recs []AlertRecord
	// stide: steady low-rate alerts over the full span, all escalated.
	for pos := 0; pos < 10000; pos += 500 {
		recs = append(recs,
			AlertRecord{Position: pos, Detector: "stide", Score: 0.97, Threshold: 0.95, Disposition: DispositionRaised},
			AlertRecord{Position: pos, Detector: "stide", Score: 0.97, Threshold: 0.95, Disposition: DispositionEscalated})
	}
	// nn: an alert storm in one early bucket, then silence — must trip both
	// the storm rule and the silent-tail rule.
	for i := 0; i < 60; i++ {
		recs = append(recs, AlertRecord{Position: 1000 + i, Detector: "nn", Score: 0.999, Threshold: 0.95, Disposition: DispositionRaised})
	}
	// markov: saturating rate across the span, nothing resolved.
	for pos := 0; pos < 10000; pos += 8 {
		recs = append(recs, AlertRecord{Position: pos, Detector: "markov", Score: 0.96, Threshold: 0.95, Disposition: DispositionRaised})
	}

	rep := AnalyzeAlerts(recs, AlertAnalysisOptions{})
	if rep.Total != len(recs) {
		t.Errorf("total = %d, want %d", rep.Total, len(recs))
	}
	if rep.MinPosition != 0 || rep.MaxPosition != 9992 {
		t.Errorf("span = %d..%d", rep.MinPosition, rep.MaxPosition)
	}
	if len(rep.Families) != 3 {
		t.Fatalf("families = %+v", rep.Families)
	}
	byName := map[string]AlertFamilyReport{}
	for _, f := range rep.Families {
		byName[f.Detector] = f
	}
	st := byName["stide"]
	if st.Raised != 20 || st.Escalated != 20 || st.Suppressed != 0 || st.Pending != 0 {
		t.Errorf("stide = %+v", st)
	}
	if re := relErr(st.Score.P50, 0.97); re > SketchAlpha {
		t.Errorf("stide p50 = %v", st.Score.P50)
	}
	if byName["markov"].Pending != byName["markov"].Raised {
		t.Errorf("markov pending = %+v", byName["markov"])
	}

	// ≥1 watchdog firing per seeded pathology.
	wantFirings := map[string]bool{"storm": false, "silent": false, "saturated": false}
	for _, f := range rep.Firings {
		for kind := range wantFirings {
			if strings.HasPrefix(f, kind+":") {
				wantFirings[kind] = true
			}
		}
	}
	for kind, seen := range wantFirings {
		if !seen {
			t.Errorf("no %s firing in %v", kind, rep.Firings)
		}
	}

	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"Alert journal:", "stide", "markov", "Watchdog:", "storm: nn"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeAlertsEmpty(t *testing.T) {
	rep := AnalyzeAlerts(nil, AlertAnalysisOptions{})
	if rep.Total != 0 || len(rep.Families) != 0 || len(rep.Firings) != 0 {
		t.Errorf("empty report = %+v", rep)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "0 record(s)") {
		t.Errorf("empty report text = %q", buf.String())
	}
}
