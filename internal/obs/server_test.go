package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHandlerEndpoints(t *testing.T) {
	reg := seededRegistry()
	prog := NewProgress()
	prog.SetPhase("grid")
	prog.StartMap("stide", 2, 4)
	prog.CellDone("stide")
	ring := NewEventRing(8)
	NewEventLog(ring).Emit("cell", Fields{"done": 1})

	ts := httptest.NewServer(NewHandler(Endpoints{Registry: reg, Progress: prog, Events: ring}))
	defer ts.Close()

	code, body, hdr := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, hdr = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != PromContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, PromContentType)
	}
	if !strings.Contains(body, "adiv_eval_cells_stide 112") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, hdr = get(t, ts.URL+"/runz")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Errorf("/runz = %d, Content-Type %q", code, hdr.Get("Content-Type"))
	}
	var st RunStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/runz is not JSON: %v\n%s", err, body)
	}
	if st.Schema != RunzSchemaVersion || st.Phase != "grid" || st.CellsDone != 1 || st.CellsTotal != 4 {
		t.Errorf("/runz = %+v", st)
	}

	code, body, _ = get(t, ts.URL+"/eventz")
	if code != http.StatusOK || !strings.Contains(body, `"event":"cell"`) {
		t.Errorf("/eventz = %d %q", code, body)
	}

	code, _, _ = get(t, ts.URL+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/heap = %d", code)
	}
}

// TestHandlerNilSources pins the degenerate wiring: every endpoint stays
// 200 with nil registry, progress, and ring.
func TestHandlerNilSources(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Endpoints{}))
	defer ts.Close()
	for path, want := range map[string]string{
		"/healthz": "ok",
		"/metrics": "adiv_uptime_seconds 0",
		"/runz":    RunzSchemaVersion,
		"/eventz":  "",
	} {
		code, body, _ := get(t, ts.URL+path)
		if code != http.StatusOK {
			t.Errorf("%s = %d", path, code)
		}
		if want != "" && !strings.Contains(body, want) {
			t.Errorf("%s missing %q: %q", path, want, body)
		}
	}
}

func TestStartServerLifecycle(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", Endpoints{Registry: New(), Progress: NewProgress()})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	addr := srv.Addr()
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("Addr() = %q", addr)
	}
	code, _, _ := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Errorf("server still serving after Close")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Errorf("nil server not a no-op")
	}
}

func TestEventRingBounds(t *testing.T) {
	ring := NewEventRing(3)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(ring, "line%d\n", i)
	}
	var sb strings.Builder
	if _, err := ring.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if got, want := sb.String(), "line2\nline3\nline4\n"; got != want {
		t.Errorf("ring tail = %q, want %q", got, want)
	}
	if ring.Total() != 5 {
		t.Errorf("Total = %d, want 5", ring.Total())
	}
	var nilRing *EventRing
	if n, err := nilRing.Write([]byte("x")); n != 1 || err != nil {
		t.Errorf("nil ring Write = %d, %v", n, err)
	}
	if n, err := nilRing.WriteTo(io.Discard); n != 0 || err != nil {
		t.Errorf("nil ring WriteTo = %d, %v", n, err)
	}
}

// TestEventRingCopies pins that the ring retains copies: the emitter's
// pooled line buffer is reused, so aliasing would corrupt older lines.
func TestEventRingCopies(t *testing.T) {
	ring := NewEventRing(4)
	buf := []byte("first\n")
	ring.Write(buf)
	copy(buf, "XXXXX")
	ring.Write([]byte("second\n"))
	var sb strings.Builder
	ring.WriteTo(&sb)
	if got := sb.String(); got != "first\nsecond\n" {
		t.Errorf("ring aliased caller buffer: %q", got)
	}
}

// TestEventzTailLimit pins the ?n= contract: n limits the tail, n=0 yields
// an empty body, malformed and negative values are a 400.
func TestEventzTailLimit(t *testing.T) {
	ring := NewEventRing(8)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(ring, "line%d\n", i)
	}
	ts := httptest.NewServer(NewHandler(Endpoints{Events: ring}))
	defer ts.Close()

	for query, want := range map[string]string{
		"":     "line0\nline1\nline2\nline3\nline4\n",
		"?n=2": "line3\nline4\n",
		"?n=5": "line0\nline1\nline2\nline3\nline4\n",
		"?n=9": "line0\nline1\nline2\nline3\nline4\n",
		"?n=0": "",
	} {
		code, body, _ := get(t, ts.URL+"/eventz"+query)
		if code != http.StatusOK {
			t.Errorf("/eventz%s = %d", query, code)
		}
		if body != want {
			t.Errorf("/eventz%s = %q, want %q", query, body, want)
		}
	}
	for _, query := range []string{"?n=-1", "?n=abc", "?n=1.5", "?n=%20"} {
		code, body, _ := get(t, ts.URL+"/eventz"+query)
		if code != http.StatusBadRequest {
			t.Errorf("/eventz%s = %d %q, want 400", query, code, body)
		}
		if !strings.Contains(body, "bad n=") {
			t.Errorf("/eventz%s error body = %q", query, body)
		}
	}
}

// TestEventRingWriteTailPartial: the limit counts populated lines, so a
// partially filled ring still returns the right tail.
func TestEventRingWriteTailPartial(t *testing.T) {
	ring := NewEventRing(8)
	fmt.Fprintf(ring, "a\n")
	fmt.Fprintf(ring, "b\n")
	var sb strings.Builder
	ring.WriteTail(&sb, 1)
	if sb.String() != "b\n" {
		t.Errorf("WriteTail(1) on partial ring = %q, want \"b\\n\"", sb.String())
	}
	var nilRing *EventRing
	if n, err := nilRing.WriteTail(io.Discard, 3); n != 0 || err != nil {
		t.Errorf("nil ring WriteTail = %d, %v", n, err)
	}
}

func TestTracezEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Endpoints{Tracer: seededTracer()}))
	defer ts.Close()
	code, body, hdr := get(t, ts.URL+"/tracez")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Errorf("/tracez = %d, Content-Type %q", code, hdr.Get("Content-Type"))
	}
	var st TraceStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/tracez is not JSON: %v\n%s", err, body)
	}
	if st.Schema != TraceSchemaVersion || st.Total != 6 || len(st.Spans) != 6 {
		t.Errorf("/tracez = schema %q total %d spans %d", st.Schema, st.Total, len(st.Spans))
	}

	// No tracer attached: still 200 with an empty schema-tagged document.
	ts2 := httptest.NewServer(NewHandler(Endpoints{}))
	defer ts2.Close()
	code, body, _ = get(t, ts2.URL+"/tracez")
	if code != http.StatusOK || !strings.Contains(body, TraceSchemaVersion) {
		t.Errorf("nil-tracer /tracez = %d %q", code, body)
	}
}

// TestAlertzEndpoint: /alertz serves the journal tail as NDJSON with the
// same ?n= contract as /eventz, and stays 200-empty with no journal wired.
func TestAlertzEndpoint(t *testing.T) {
	j := NewAlertJournal(nil)
	seedJournal(j)
	ts := httptest.NewServer(NewHandler(Endpoints{Alerts: j}))
	defer ts.Close()

	code, body, hdr := get(t, ts.URL+"/alertz")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/x-ndjson" {
		t.Errorf("/alertz = %d, Content-Type %q", code, hdr.Get("Content-Type"))
	}
	recs, err := ReadAlerts(strings.NewReader(body))
	if err != nil || len(recs) != 4 {
		t.Fatalf("/alertz body: %d recs, err %v\n%s", len(recs), err, body)
	}
	if recs[0].Detector != "stide" || recs[0].Disposition != DispositionRaised {
		t.Errorf("first alert = %+v", recs[0])
	}

	_, body, _ = get(t, ts.URL+"/alertz?n=1")
	if recs, _ := ReadAlerts(strings.NewReader(body)); len(recs) != 1 {
		t.Errorf("/alertz?n=1 served %d records", len(recs))
	}
	if code, _, _ := get(t, ts.URL+"/alertz?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("/alertz?n=bogus = %d, want 400", code)
	}

	ts2 := httptest.NewServer(NewHandler(Endpoints{}))
	defer ts2.Close()
	code, body, _ = get(t, ts2.URL+"/alertz")
	if code != http.StatusOK || body != "" {
		t.Errorf("nil-journal /alertz = %d %q", code, body)
	}
}

// TestLiveViewsNoStore pins the Cache-Control header on the live views: a
// proxy caching /runz or /eventz would show a stalled run as progressing.
func TestLiveViewsNoStore(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Endpoints{}))
	defer ts.Close()
	for _, path := range []string{"/runz", "/eventz", "/alertz"} {
		_, _, hdr := get(t, ts.URL+path)
		if cc := hdr.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
	}
}

// TestHealthzDegraded: firing watchdog rules append degraded lines to the
// probe body while the status stays 200 (attention, not restart).
func TestHealthzDegraded(t *testing.T) {
	reg := New()
	reg.Counter("online/responses/stide").Add(5)
	wd := NewWatchdog(reg)
	wd.AddSilent("stide-silent", "online/responses/stide", 1)
	wd.Tick() // baseline (counter active, rule armed)
	wd.Tick() // silent tick — fires
	if !wd.Firing("stide-silent") {
		t.Fatal("rule should fire")
	}
	ts := httptest.NewServer(NewHandler(Endpoints{Registry: reg, Watchdog: wd}))
	defer ts.Close()
	code, body, _ := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200 even when degraded", code)
	}
	if !strings.HasPrefix(body, "ok\n") || !strings.Contains(body, "degraded: stide-silent") {
		t.Errorf("/healthz body = %q", body)
	}
}

// TestRunzQuantiles: the /runz handler folds the registry's live sketch
// stats into the status document.
func TestRunzQuantiles(t *testing.T) {
	reg := New()
	reg.Sketch("online/push_latency/stide").ObserveAll([]float64{1e-6, 2e-6, 4e-6})
	ts := httptest.NewServer(NewHandler(Endpoints{Registry: reg, Progress: NewProgress()}))
	defer ts.Close()
	_, body, _ := get(t, ts.URL+"/runz")
	var st RunStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/runz: %v", err)
	}
	q, ok := st.Quantiles["online/push_latency/stide"]
	if !ok || q.Count != 3 {
		t.Fatalf("quantiles = %+v", st.Quantiles)
	}
	if q.P50 <= 0 || q.P99 < q.P50 {
		t.Errorf("sketch stats = %+v", q)
	}
}
