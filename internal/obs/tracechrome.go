package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"
)

// Chrome trace_event export: the tracer ring serialized as the JSON object
// format Perfetto and chrome://tracing load directly. Lanes map to thread
// tracks (tid 0 is the main goroutine, tid N+1 is scheduler worker N) so
// per-worker occupancy reads straight off the timeline; laneless spans
// (singleflight DB builds, detector scoring) become async "b"/"e" pairs
// that may overlap freely; instants become "i" events. Span and parent IDs
// ride in args, so ReadChromeTrace can rebuild the exact SpanEvents and
// diagnose -trace can recover the span tree from the exported file alone.

// TraceMeta is the run-level header of an exported trace.
type TraceMeta struct {
	// Schema is the trace schema version (TraceSchemaVersion on export).
	Schema string
	// TraceID identifies the originating tracer.
	TraceID uint64
	// Total and Dropped are the tracer's lifetime span counts at export.
	Total, Dropped int64
}

// chromeDoc is the trace_event JSON object form.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       chromeOther   `json:"otherData"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeOther struct {
	Schema  string `json:"schema"`
	TraceID string `json:"traceId"`
	Total   int64  `json:"total"`
	Dropped int64  `json:"dropped"`
}

type chromeEvent struct {
	Name  string            `json:"name,omitempty"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   *int64            `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	ID    string            `json:"id,omitempty"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// tracePID is the single process ID all exported events carry; shard
// merging is expected to re-home shards onto distinct pids.
const tracePID = 1

// laneTID maps a span lane to its Chrome thread ID (main = 0, worker N =
// N+1). Only meaningful for LaneMain and worker lanes; async spans don't
// use thread tracks.
func laneTID(lane int) int {
	if lane == LaneMain {
		return 0
	}
	return lane + 1
}

// tidLane is laneTID's inverse.
func tidLane(tid int) int {
	if tid == 0 {
		return LaneMain
	}
	return tid - 1
}

func hexID(id uint64) string { return "0x" + strconv.FormatUint(id, 16) }

// WriteChromeTrace serializes spans (oldest first) under meta as Chrome
// trace_event JSON.
func WriteChromeTrace(w io.Writer, meta TraceMeta, spans []SpanEvent) error {
	doc := chromeDoc{
		DisplayTimeUnit: "ms",
		OtherData: chromeOther{
			Schema:  meta.Schema,
			TraceID: hexID(meta.TraceID),
			Total:   meta.Total,
			Dropped: meta.Dropped,
		},
		TraceEvents: make([]chromeEvent, 0, 2*len(spans)+4),
	}

	// Thread-name metadata: the main track plus every worker lane observed.
	lanes := map[int]bool{}
	for _, ev := range spans {
		if ev.Lane >= 0 || ev.Lane == LaneMain {
			lanes[ev.Lane] = true
		}
	}
	tids := make([]int, 0, len(lanes))
	for lane := range lanes {
		tids = append(tids, laneTID(lane))
	}
	sort.Ints(tids)
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]string{"name": "adiv"},
	})
	for _, tid := range tids {
		name := "main"
		if lane := tidLane(tid); lane >= 0 {
			name = "worker " + strconv.Itoa(lane)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]string{"name": name},
		})
	}

	for _, ev := range spans {
		args := make(map[string]string, len(ev.Attrs)+2)
		args["id"] = hexID(ev.ID)
		if ev.Parent != 0 {
			args["parent"] = hexID(ev.Parent)
		}
		for _, a := range ev.Attrs {
			args[a.Key] = a.Value
		}
		ts := int64(ev.Start / time.Microsecond)
		switch {
		case ev.Instant:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: "i", TS: ts, Scope: "g",
				PID: tracePID, TID: laneTIDOrMain(ev.Lane), Args: args,
			})
		case ev.Lane == LaneAsync:
			doc.TraceEvents = append(doc.TraceEvents,
				chromeEvent{
					Name: ev.Name, Cat: ev.Cat, Ph: "b", TS: ts,
					PID: tracePID, ID: hexID(ev.ID), Args: args,
				},
				chromeEvent{
					Name: ev.Name, Cat: ev.Cat, Ph: "e",
					TS:  ts + int64(ev.Dur/time.Microsecond),
					PID: tracePID, ID: hexID(ev.ID),
				})
		default:
			dur := int64(ev.Dur / time.Microsecond)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: "X", TS: ts, Dur: &dur,
				PID: tracePID, TID: laneTID(ev.Lane), Args: args,
			})
		}
	}

	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshaling trace: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}

// laneTIDOrMain maps instants' lanes: laneless instants land on the main
// track (instants carry no duration, so overlap is harmless).
func laneTIDOrMain(lane int) int {
	if lane == LaneAsync {
		return 0
	}
	return laneTID(lane)
}

// WriteChrome exports the tracer's retained spans as Chrome trace_event
// JSON. A nil tracer writes an empty (but schema-tagged) trace.
func (t *Tracer) WriteChrome(w io.Writer) error {
	meta := TraceMeta{Schema: TraceSchemaVersion}
	if t != nil {
		meta.TraceID = t.TraceID()
		meta.Total, meta.Dropped = t.Stats()
	}
	return WriteChromeTrace(w, meta, t.Snapshot())
}

// WriteChromeFile writes the Chrome trace to path, creating or truncating
// it.
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := t.WriteChrome(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return fmt.Errorf("obs: closing trace file: %w", cerr)
	}
	return nil
}

// ReadChromeTrace parses a Chrome trace_event JSON document previously
// written by WriteChromeTrace back into its meta header and span events
// (oldest first, by array order; async pairs close at their "e" event). It
// rejects documents whose otherData names a different schema; documents
// with no schema tag (foreign Chrome traces) parse with best effort.
func ReadChromeTrace(r io.Reader) (TraceMeta, []SpanEvent, error) {
	var doc chromeDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return TraceMeta{}, nil, fmt.Errorf("obs: not a Chrome trace JSON document: %w", err)
	}
	if doc.OtherData.Schema != "" && doc.OtherData.Schema != TraceSchemaVersion {
		return TraceMeta{}, nil, fmt.Errorf("obs: unsupported trace schema %q (want %s)", doc.OtherData.Schema, TraceSchemaVersion)
	}
	meta := TraceMeta{
		Schema:  doc.OtherData.Schema,
		Total:   doc.OtherData.Total,
		Dropped: doc.OtherData.Dropped,
	}
	if id, err := parseHexID(doc.OtherData.TraceID); err == nil {
		meta.TraceID = id
	}

	var spans []SpanEvent
	open := map[string]int{} // async "b" events awaiting their "e", by id
	for _, ce := range doc.TraceEvents {
		switch ce.Ph {
		case "X":
			ev := eventFromChrome(ce, meta.TraceID)
			ev.Lane = tidLane(ce.TID)
			if ce.Dur != nil {
				ev.Dur = time.Duration(*ce.Dur) * time.Microsecond
			}
			spans = append(spans, ev)
		case "i", "I":
			ev := eventFromChrome(ce, meta.TraceID)
			ev.Lane = LaneAsync
			ev.Instant = true
			spans = append(spans, ev)
		case "b":
			ev := eventFromChrome(ce, meta.TraceID)
			ev.Lane = LaneAsync
			spans = append(spans, ev)
			open[ce.ID] = len(spans) - 1
		case "e":
			if i, ok := open[ce.ID]; ok {
				end := time.Duration(ce.TS) * time.Microsecond
				if d := end - spans[i].Start; d > 0 {
					spans[i].Dur = d
				}
				delete(open, ce.ID)
			}
		}
	}
	return meta, spans, nil
}

// eventFromChrome rebuilds the common SpanEvent fields of one trace event.
func eventFromChrome(ce chromeEvent, traceID uint64) SpanEvent {
	ev := SpanEvent{
		TraceID: traceID,
		Name:    ce.Name,
		Cat:     ce.Cat,
		Start:   time.Duration(ce.TS) * time.Microsecond,
	}
	if id, err := parseHexID(ce.Args["id"]); err == nil {
		ev.ID = id
	} else if id, err := parseHexID(ce.ID); err == nil {
		ev.ID = id
	}
	if p, err := parseHexID(ce.Args["parent"]); err == nil {
		ev.Parent = p
	}
	keys := make([]string, 0, len(ce.Args))
	for k := range ce.Args {
		if k == "id" || k == "parent" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ev.Attrs = append(ev.Attrs, TraceAttr{Key: k, Value: ce.Args[k]})
	}
	return ev
}

func parseHexID(s string) (uint64, error) {
	if len(s) > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	if s == "" {
		return 0, fmt.Errorf("obs: empty id")
	}
	return strconv.ParseUint(s, 16, 64)
}

// TraceStatus is the JSON document /tracez serves: the tracer's retained
// spans plus drop accounting, schema adiv.trace/v1.
type TraceStatus struct {
	Schema  string       `json:"schema"`
	TraceID string       `json:"traceId"`
	Total   int64        `json:"total"`
	Dropped int64        `json:"dropped"`
	Spans   []SpanStatus `json:"spans"`
}

// SpanStatus is one retained span in the /tracez document.
type SpanStatus struct {
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Cat     string            `json:"cat,omitempty"`
	Lane    int               `json:"lane"`
	Instant bool              `json:"instant,omitempty"`
	StartMs float64           `json:"startMs"`
	DurMs   float64           `json:"durMs"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Status snapshots the tracer for /tracez. A nil tracer yields an empty
// (but schema-tagged) document.
func (t *Tracer) Status() TraceStatus {
	st := TraceStatus{Schema: TraceSchemaVersion, TraceID: hexID(t.TraceID()), Spans: []SpanStatus{}}
	if t == nil {
		return st
	}
	st.Total, st.Dropped = t.Stats()
	for _, ev := range t.Snapshot() {
		ss := SpanStatus{
			ID:      hexID(ev.ID),
			Name:    ev.Name,
			Cat:     ev.Cat,
			Lane:    ev.Lane,
			Instant: ev.Instant,
			StartMs: durationMs(ev.Start),
			DurMs:   durationMs(ev.Dur),
		}
		if ev.Parent != 0 {
			ss.Parent = hexID(ev.Parent)
		}
		if len(ev.Attrs) > 0 {
			ss.Attrs = make(map[string]string, len(ev.Attrs))
			for _, a := range ev.Attrs {
				ss.Attrs[a.Key] = a.Value
			}
		}
		st.Spans = append(st.Spans, ss)
	}
	return st
}
