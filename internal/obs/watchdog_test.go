package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWatchdogSilent(t *testing.T) {
	r := New()
	var events bytes.Buffer
	r.SetEventLog(NewEventLog(&events))
	w := NewWatchdog(r)
	w.AddSilent("stide-silent", "online/responses/stide", 2)

	c := r.Counter("online/responses/stide")
	w.Tick() // baseline
	if w.Firing("stide-silent") {
		t.Error("must not fire on the baseline tick")
	}
	// Never-active counter: zero deltas must NOT fire (the rule is unarmed).
	w.Tick()
	w.Tick()
	w.Tick()
	if w.Firing("stide-silent") {
		t.Error("unarmed rule fired on a counter that never incremented")
	}

	c.Add(10) // activity arms the rule
	w.Tick()
	w.Tick() // silent tick 1
	if w.Firing("stide-silent") {
		t.Error("fired before the window filled")
	}
	w.Tick() // silent tick 2 — window filled
	if !w.Firing("stide-silent") {
		t.Error("armed rule must fire after 2 silent ticks")
	}
	if d := w.Degraded(); len(d) != 1 || !strings.Contains(d[0], "stide-silent") {
		t.Errorf("degraded = %v", d)
	}
	if !strings.Contains(events.String(), `"event":"watch.silent"`) {
		t.Errorf("no watch.silent event in %s", events.String())
	}

	// Recovery clears the rule and emits watch.clear.
	c.Inc()
	w.Tick()
	if w.Firing("stide-silent") {
		t.Error("rule must clear on renewed activity")
	}
	if len(w.Degraded()) != 0 {
		t.Errorf("degraded after recovery = %v", w.Degraded())
	}
	if !strings.Contains(events.String(), `"event":"watch.clear"`) {
		t.Errorf("no watch.clear event in %s", events.String())
	}
}

func TestWatchdogSaturated(t *testing.T) {
	r := New()
	w := NewWatchdog(r)
	w.AddSaturated("alarm-sat", "online/alarms/stide", 5, 2)
	c := r.Counter("online/alarms/stide")
	w.Tick() // baseline
	c.Add(10)
	w.Tick() // over bound, tick 1
	if w.Firing("alarm-sat") {
		t.Error("fired before the window filled")
	}
	c.Add(10)
	w.Tick() // over bound, tick 2
	if !w.Firing("alarm-sat") {
		t.Error("must fire after 2 over-bound ticks")
	}
	c.Add(1)
	w.Tick() // back under bound
	if w.Firing("alarm-sat") {
		t.Error("must clear when the rate drops")
	}
}

func TestWatchdogStorm(t *testing.T) {
	r := New()
	w := NewWatchdog(r)
	w.AddStorm("alarm-storm", "online/alarms/nn", 100)
	c := r.Counter("online/alarms/nn")
	w.Tick() // baseline
	c.Add(99)
	w.Tick()
	if w.Firing("alarm-storm") {
		t.Error("fired below the burst bound")
	}
	c.Add(100)
	w.Tick()
	if !w.Firing("alarm-storm") {
		t.Error("must fire the tick the burst lands")
	}
}

// TestWatchdogDormantRule: a rule watching a counter its subsystem never
// registered must stay dormant and must not create the counter.
func TestWatchdogDormantRule(t *testing.T) {
	r := New()
	w := NewWatchdog(r)
	w.AddSilent("ghost", "never/registered", 1)
	w.Tick()
	w.Tick()
	w.Tick()
	if w.Firing("ghost") {
		t.Error("dormant rule fired")
	}
	if _, exists := r.counterValue("never/registered"); exists {
		t.Error("watchdog conjured the watched counter into the registry")
	}
}

func TestWatchdogNil(t *testing.T) {
	var w *Watchdog
	w.AddSilent("x", "c", 1) // must not panic
	w.AddSaturated("x", "c", 1, 1)
	w.AddStorm("x", "c", 1)
	w.Tick()
	if w.Degraded() != nil || w.Firing("x") {
		t.Error("nil watchdog must be inert")
	}
	// A watchdog over a nil registry is also inert (counterValue nil-safe).
	w2 := NewWatchdog(nil)
	w2.AddSilent("x", "c", 1)
	w2.Tick()
	if w2.Firing("x") {
		t.Error("watchdog over nil registry fired")
	}
}
