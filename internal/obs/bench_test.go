package obs

import (
	"io"
	"testing"
	"time"
)

// The disabled (nil-registry) path must cost nothing measurable: these
// benchmarks pin the per-operation cost of the no-op handles that
// instrumented hot paths (Detector.Score, online Push) carry.

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := New().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveAllDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("x", 10)
	vs := make([]float64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveAll(vs)
	}
}

func BenchmarkHistogramObserveAllEnabled(b *testing.B) {
	h := New().Histogram("x", 10)
	vs := make([]float64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveAll(vs)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("x").End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("x").End()
	}
}

func BenchmarkTimingRecord(b *testing.B) {
	tm := New().Timing("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Record(time.Microsecond)
	}
}

// BenchmarkSketchObserve pins the quantile-sketch observe path: one mutex
// hold, a log, and an array increment — and zero allocations, the contract
// the online push hot path (which observes a latency per push) depends on.
func BenchmarkSketchObserve(b *testing.B) {
	s := New().Sketch("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(3.5e-7)
	}
}

func BenchmarkSketchObserveDisabled(b *testing.B) {
	var r *Registry
	s := r.Sketch("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(3.5e-7)
	}
}

// BenchmarkSketchObserveAll measures the batched path (one lock per batch)
// against BenchmarkSketchObservePerElement (one lock per value) on the same
// 1024-value batch — the delta is the cost the batch API removes.
func BenchmarkSketchObserveAll(b *testing.B) {
	s := New().Sketch("x")
	vs := make([]float64, 1024)
	for i := range vs {
		vs[i] = float64(i+1) * 1e-6
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ObserveAll(vs)
	}
}

func BenchmarkSketchObservePerElement(b *testing.B) {
	s := New().Sketch("x")
	vs := make([]float64, 1024)
	for i := range vs {
		vs[i] = float64(i+1) * 1e-6
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vs {
			s.Observe(v)
		}
	}
}

// BenchmarkHistogramObservePerElement is the per-element counterpart of
// BenchmarkHistogramObserveAllEnabled: the pairing documents what the
// batch-lock ObserveAll API saves on the instrumented-Score path (one lock
// acquisition per response vs one per batch).
func BenchmarkHistogramObservePerElement(b *testing.B) {
	h := New().Histogram("x", 10)
	vs := make([]float64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, v := range vs {
			h.Observe(v)
		}
	}
}

// benchFields is a representative -progress cell event payload.
var benchFields = Fields{
	"detector": "stide",
	"window":   8,
	"size":     5,
	"outcome":  "capable",
	"ms":       11.25,
	"done":     int64(40),
	"total":    112,
}

// BenchmarkEventLogEmit pins the per-line cost of the NDJSON emitter. The
// line-assembly buffer is pooled (sync.Pool), so steady-state emission
// allocates only the per-field JSON encoding, not a fresh growing buffer
// per line.
func BenchmarkEventLogEmit(b *testing.B) {
	l := NewEventLog(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit("cell", benchFields)
	}
}

// BenchmarkEventLogEmitRing is the same emission with the /eventz
// ring-buffer sink attached — the tee must stay within a copy of the
// pooled-buffer path, not regress it.
func BenchmarkEventLogEmitRing(b *testing.B) {
	l := NewEventLog(NewEventRing(DefaultEventRingLines))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit("cell", benchFields)
	}
}

// BenchmarkTracerSpanDisabled pins the cost of tracing left off: a nil
// tracer's Start/SetLane/SetAttr/End must be pointer tests, zero allocation.
func BenchmarkTracerSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("cell/stide", "cell")
		sp.SetLane(1)
		sp.SetAttr("detector", "stide")
		sp.End()
	}
}

// BenchmarkTracerSpanEnabled is the live-recording cost: one span struct and
// its attrs per region, one short mutex hold on End.
func BenchmarkTracerSpanEnabled(b *testing.B) {
	tr := NewTracer(DefaultTraceSpans)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("cell/stide", "cell")
		sp.SetLane(1)
		sp.SetAttr("detector", "stide")
		sp.End()
	}
}

// BenchmarkSpanTracedUntraced pins the Registry-level upgrade contract: a
// SpanTraced call site on a registry WITHOUT a tracer must cost what Span
// costs, so upgrading call sites never taxes untraced runs.
func BenchmarkSpanTracedUntraced(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SpanTraced("x", "cell").End()
	}
}
