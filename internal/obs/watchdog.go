package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Watchdog evaluates detector-health rules against the registry's counters
// on snapshot ticks. Each rule watches one counter by name and compares
// per-tick deltas against its condition:
//
//   - silent: an armed detector (one that has produced responses before)
//     stops producing them for N consecutive ticks — a wedged worker, a
//     starved stream.
//   - saturated: the alert rate stays above a bound for N consecutive ticks
//     — a detector drowning the pipeline, a threshold gone wrong.
//   - storm: a single tick's alert burst exceeds a bound — the acute form
//     of saturation, flagged immediately.
//
// Rules reference counters read-only (a rule whose counter was never
// registered stays dormant — it must not conjure metrics into snapshots).
// State transitions emit watch.<kind> events on firing and watch.clear on
// recovery; Degraded lists the currently-firing rules, the field /healthz
// appends. Drivers tick the watchdog from a wall-clock goroutine; tests
// call Tick directly for determinism. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type Watchdog struct {
	mu    sync.Mutex
	reg   *Registry
	rules []*watchRule
	ticks int64
}

// Watchdog rule kinds, as emitted in watch.* event names.
const (
	watchSilent    = "silent"
	watchSaturated = "saturated"
	watchStorm     = "storm"
)

type watchRule struct {
	name    string // rule name, for events and Degraded
	kind    string
	counter string // registry counter the rule watches
	windows int    // consecutive ticks the condition must hold
	bound   int64  // per-tick delta bound (saturated max, storm burst)

	last   int64 // counter value at the previous tick
	seen   bool  // counter existed at some prior tick (delta is defined)
	armed  bool  // counter has incremented at least once (silent rules only)
	hits   int   // consecutive ticks the condition held
	firing bool
	detail string // human-readable firing description
}

// NewWatchdog returns a watchdog over reg's counters with no rules.
func NewWatchdog(reg *Registry) *Watchdog {
	return &Watchdog{reg: reg}
}

// AddSilent adds a rule that fires when the counter — having incremented at
// least once before — advances by zero for windows consecutive ticks
// (windows < 1 clamps to 1).
func (w *Watchdog) AddSilent(name, counter string, windows int) {
	w.add(&watchRule{name: name, kind: watchSilent, counter: counter, windows: windows})
}

// AddSaturated adds a rule that fires when the counter advances by more than
// maxPerTick for windows consecutive ticks (windows < 1 clamps to 1).
func (w *Watchdog) AddSaturated(name, counter string, maxPerTick int64, windows int) {
	w.add(&watchRule{name: name, kind: watchSaturated, counter: counter, windows: windows, bound: maxPerTick})
}

// AddStorm adds a rule that fires the moment the counter advances by burst
// or more within a single tick.
func (w *Watchdog) AddStorm(name, counter string, burst int64) {
	w.add(&watchRule{name: name, kind: watchStorm, counter: counter, windows: 1, bound: burst})
}

func (w *Watchdog) add(r *watchRule) {
	if w == nil || r.name == "" || r.counter == "" {
		return
	}
	if r.windows < 1 {
		r.windows = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rules = append(w.rules, r)
}

// Tick evaluates every rule against the current counter values. The first
// tick only baselines (deltas need two reads); rules whose counter does not
// exist stay dormant. Firing transitions emit watch.<kind> events and
// recoveries emit watch.clear, both outside the watchdog's lock.
func (w *Watchdog) Tick() {
	if w == nil {
		return
	}
	type emission struct {
		event  string
		fields Fields
	}
	var emits []emission
	w.mu.Lock()
	reg := w.reg
	w.ticks++
	for _, r := range w.rules {
		value, exists := reg.counterValue(r.counter)
		if !exists {
			continue
		}
		if !r.seen {
			r.seen = true
			r.last = value
			if value > 0 {
				r.armed = true
			}
			continue
		}
		delta := value - r.last
		r.last = value
		if delta > 0 {
			r.armed = true
		}

		hit := false
		switch r.kind {
		case watchSilent:
			hit = r.armed && delta == 0
			// An active tick both misses and disarms the streak below.
		case watchSaturated:
			hit = delta > r.bound
		case watchStorm:
			hit = delta >= r.bound
		}
		if hit {
			r.hits++
		} else {
			r.hits = 0
		}

		shouldFire := r.hits >= r.windows
		switch {
		case shouldFire && !r.firing:
			r.firing = true
			r.detail = watchDetail(r, delta)
			emits = append(emits, emission{"watch." + r.kind, Fields{
				"rule":    r.name,
				"counter": r.counter,
				"delta":   delta,
				"detail":  r.detail,
			}})
		case !shouldFire && r.firing:
			r.firing = false
			r.detail = ""
			emits = append(emits, emission{"watch.clear", Fields{
				"rule":    r.name,
				"counter": r.counter,
			}})
		}
	}
	w.mu.Unlock()
	for _, e := range emits {
		reg.Event(e.event, e.fields)
	}
}

// watchDetail renders a rule's firing description.
func watchDetail(r *watchRule, delta int64) string {
	switch r.kind {
	case watchSilent:
		return fmt.Sprintf("%s: %s produced no responses for %d tick(s)", r.name, r.counter, r.windows)
	case watchSaturated:
		return fmt.Sprintf("%s: %s rate %d/tick above bound %d for %d tick(s)", r.name, r.counter, delta, r.bound, r.windows)
	default:
		return fmt.Sprintf("%s: %s burst %d >= %d in one tick", r.name, r.counter, delta, r.bound)
	}
}

// Degraded returns the firing rules' descriptions in sorted order — empty
// when healthy, and on a nil watchdog. /healthz appends these below its
// "ok" line.
func (w *Watchdog) Degraded() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, r := range w.rules {
		if r.firing {
			out = append(out, r.detail)
		}
	}
	sort.Strings(out)
	return out
}

// Firing reports whether the named rule is currently firing.
func (w *Watchdog) Firing(name string) bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, r := range w.rules {
		if r.name == name {
			return r.firing
		}
	}
	return false
}
