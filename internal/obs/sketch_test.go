package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// relErr returns |got-want|/want (0 when want is 0 and got is 0).
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSketchErrorBound is the accuracy golden: on a deterministic reference
// distribution spanning several orders of magnitude (log-normal latencies,
// the shape the sketch was built for), every reported quantile must be
// within the documented SketchAlpha relative error of the true sample
// quantile. This is the bound README/DESIGN document, so it is pinned here.
func TestSketchErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 50000
	s := NewSketch()
	vals := make([]float64, n)
	for i := range vals {
		// exp(N(ln 1ms, 2)) — microseconds to seconds, heavy right tail.
		v := math.Exp(math.Log(1e-3) + 2*rng.NormFloat64())
		vals[i] = v
		s.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(n))) - 1
		if rank < 0 {
			rank = 0
		}
		want := vals[rank]
		got := s.Quantile(q)
		if re := relErr(got, want); re > SketchAlpha {
			t.Errorf("q=%v: got %v want %v (rel err %.4f > alpha %v)", q, got, want, re, SketchAlpha)
		}
	}
	if s.Count() != n {
		t.Errorf("count = %d, want %d", s.Count(), n)
	}
}

// TestSketchUniformBound repeats the bound check on a uniform distribution —
// a different shape than the log-normal golden, same contract.
func TestSketchUniformBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	s := NewSketch()
	vals := make([]float64, n)
	for i := range vals {
		v := rng.Float64()*100 + 1e-6
		vals[i] = v
		s.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		rank := int(math.Ceil(q*float64(n))) - 1
		want := vals[rank]
		if re := relErr(s.Quantile(q), want); re > SketchAlpha {
			t.Errorf("q=%v: rel err %.4f > %v", q, re, SketchAlpha)
		}
	}
}

func TestSketchExactSmallStream(t *testing.T) {
	s := NewSketch()
	s.ObserveAll([]float64{1, 2, 3, 4})
	// Rank semantics: ceil(q·n) as a 1-based order statistic.
	for q, want := range map[float64]float64{
		0.0:  1, // rank clamps to 1
		0.25: 1,
		0.5:  2,
		0.75: 3,
		1.0:  4,
	} {
		if re := relErr(s.Quantile(q), want); re > SketchAlpha {
			t.Errorf("Quantile(%v) = %v, want %v ± %v%%", q, s.Quantile(q), want, 100*SketchAlpha)
		}
	}
	st := s.Stats()
	if st.Count != 4 || st.Sum != 10 || st.Min != 1 || st.Max != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSketchEmptyAndNil(t *testing.T) {
	var nilSketch *Sketch
	nilSketch.Observe(1)      // must not panic
	nilSketch.ObserveAll(nil) // must not panic
	if nilSketch.Count() != 0 || nilSketch.Quantile(0.5) != 0 {
		t.Error("nil sketch must report zeros")
	}
	if st := nilSketch.Stats(); st != (SketchStats{}) {
		t.Errorf("nil stats = %+v", st)
	}

	empty := NewSketch()
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 {
		t.Error("empty sketch must report zeros")
	}
	if st := empty.Stats(); st != (SketchStats{}) {
		t.Errorf("empty stats = %+v", st)
	}

	var r *Registry
	if r.Sketch("x") != nil {
		t.Error("nil registry must hand out nil sketch handles")
	}
	if r.SketchSnapshots() != nil {
		t.Error("nil registry SketchSnapshots must be nil")
	}
}

func TestSketchIgnoresNonFinite(t *testing.T) {
	s := NewSketch()
	s.Observe(math.NaN())
	s.Observe(math.Inf(1))
	s.Observe(math.Inf(-1))
	s.ObserveAll([]float64{math.NaN(), 5, math.Inf(1)})
	if s.Count() != 1 {
		t.Errorf("count = %d, want 1 (non-finite values dropped)", s.Count())
	}
	if re := relErr(s.Quantile(0.5), 5); re > SketchAlpha {
		t.Errorf("median = %v, want 5", s.Quantile(0.5))
	}
}

// TestSketchLowBucket: values at or below sketchMinValue (zero included)
// collapse into the low bucket and report as the observed minimum — the
// sketch must not invent a positive magnitude for them.
func TestSketchLowBucket(t *testing.T) {
	s := NewSketch()
	s.ObserveAll([]float64{0, 0, 0, 1e-12})
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of sub-minimum stream = %v, want 0 (observed min)", got)
	}
	st := s.Stats()
	if st.Count != 4 || st.Min != 0 || st.Max != 1e-12 {
		t.Errorf("stats = %+v", st)
	}
	// Negative values also land in the low bucket (they are below minValue).
	s2 := NewSketch()
	s2.Observe(-3)
	s2.Observe(2)
	if got := s2.Quantile(0.0); got != -3 {
		t.Errorf("min quantile = %v, want -3", got)
	}
}

// TestSketchClampRange: values beyond sketchMaxValue clamp into the top
// bucket but quantile estimates clamp to the observed max, never past it.
func TestSketchClampRange(t *testing.T) {
	s := NewSketch()
	s.Observe(5e9) // above sketchMaxValue
	s.Observe(1)
	if got := s.Quantile(1.0); got != 5e9 {
		t.Errorf("max quantile = %v, want observed max 5e9", got)
	}
}

func TestSketchRegistryReuse(t *testing.T) {
	r := New()
	a := r.Sketch("push_latency")
	b := r.Sketch("push_latency")
	if a != b {
		t.Error("same name must return the same sketch")
	}
	a.Observe(0.5)
	snaps := r.SketchSnapshots()
	if len(snaps) != 1 || snaps["push_latency"].Count != 1 {
		t.Errorf("snapshots = %+v", snaps)
	}
	if New().SketchSnapshots() != nil {
		t.Error("registry with no sketches must snapshot nil")
	}
}

func TestSketchConcurrent(t *testing.T) {
	s := New().Sketch("x")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(float64(g*per+i+1) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	if s.Count() != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count(), goroutines*per)
	}
	// Median of 1..8000 µs is ~4000 µs.
	if re := relErr(s.Quantile(0.5), 4000e-6); re > SketchAlpha {
		t.Errorf("median = %v, rel err %v", s.Quantile(0.5), re)
	}
}

// TestSketchObserveAllocs pins the observe-path allocation contract: the
// online push hot path observes a latency per push and must stay at zero
// allocations with telemetry enabled.
func TestSketchObserveAllocs(t *testing.T) {
	s := New().Sketch("x")
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(3.5e-7)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %v/op, want 0", allocs)
	}
	vs := []float64{1e-6, 2e-6, 3e-6}
	allocs = testing.AllocsPerRun(1000, func() {
		s.ObserveAll(vs)
	})
	if allocs != 0 {
		t.Errorf("ObserveAll allocates %v/op, want 0", allocs)
	}
}

func TestSketchStatsQuantileOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSketch()
	for i := 0; i < 5000; i++ {
		s.Observe(rng.ExpFloat64())
	}
	st := s.Stats()
	if !(st.Min <= st.P50 && st.P50 <= st.P90 && st.P90 <= st.P99 && st.P99 <= st.Max) {
		t.Errorf("quantiles out of order: %+v", st)
	}
}
