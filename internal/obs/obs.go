// Package obs is the repository's dependency-free observability layer: a
// metrics registry (counters, gauges, fixed-bin histograms over [0,1],
// fixed-memory quantile sketches), nestable timing spans, a structured
// NDJSON event log, an append-only alert journal, and detector-health
// watchdog rules. The long batch
// runs that produce the paper's performance maps — corpus synthesis, dozens
// of detector trainings, the 8×14 evaluation grid — report where time goes
// and whether they are making progress through this package, and every run
// can emit a machine-readable metrics snapshot for benchmark-trajectory
// tracking.
//
// # Disabled path
//
// Every entry point is nil-safe: all methods on a nil *Registry, *Counter,
// *Gauge, *Histogram, *Timing, *Span, and *EventLog are no-ops, so
// instrumented code paths carry a single pointer test and no allocation
// when observability is off. Instrumentation holds typed handles (obtained
// once from the registry) rather than doing name lookups on hot paths.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named collection of metrics plus an optional event log.
// All methods are safe for concurrent use and are no-ops on a nil receiver.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timings  map[string]*Timing
	sketches map[string]*Sketch
	events   *EventLog
	tracer   *Tracer

	now   func() time.Time
	start time.Time
}

// New returns an empty registry whose uptime starts now.
func New() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timings:  make(map[string]*Timing),
		sketches: make(map[string]*Sketch),
		now:      time.Now,
	}
	r.start = r.now()
	return r
}

// SetClock replaces the registry's time source (tests use a deterministic
// fake) and restarts the uptime epoch from the new clock.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
	r.start = now()
}

// SetEventLog attaches an event log; Event calls forward to it. A nil log
// detaches.
func (r *Registry) SetEventLog(l *EventLog) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = l
}

// SetTracer attaches an execution tracer; SpanTraced calls record into it.
// A nil tracer detaches, restoring the aggregate-only behavior.
func (r *Registry) SetTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = t
}

// Tracer returns the attached execution tracer (nil when none, and on a nil
// registry). All tracer methods are nil-safe, so callers hold the result
// unconditionally.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tracer
}

// Event emits a structured event to the attached log, if any.
func (r *Registry) Event(event string, fields Fields) {
	if r == nil {
		return
	}
	r.mu.RLock()
	l := r.events
	r.mu.RUnlock()
	l.Emit(event, fields)
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bin histogram over [0,1], creating it
// with the given bin count on first use (at least 2; later calls reuse the
// existing histogram regardless of bins).
func (r *Registry) Histogram(name string, bins int) *Histogram {
	if r == nil {
		return nil
	}
	if bins < 2 {
		bins = 2
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{bins: make([]int64, bins)}
		r.hists[name] = h
	}
	return h
}

// counterValue reads the named counter without creating it — the watchdog's
// read-only view: a rule watching a counter its subsystem never registered
// must stay dormant, not conjure the counter into every snapshot.
func (r *Registry) counterValue(name string) (value int64, exists bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0, false
	}
	return c.Value(), true
}

// Timing returns the named duration accumulator, creating it on first use.
func (r *Registry) Timing(name string) *Timing {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.timings[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timings[name]; t == nil {
		t = &Timing{}
		r.timings[name] = t
	}
	return t
}

// Counter is a monotonically increasing integer metric. Safe for
// concurrent use; no-op on a nil receiver.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value float metric. Safe for concurrent use; no-op on a
// nil receiver. Non-finite values are ignored so snapshots always marshal.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last value set (0 on a nil or never-set receiver).
func (g *Gauge) Value() float64 {
	if g == nil || !g.set.Load() {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed equal-width bins over [0,1],
// mirroring eval.Profile semantics: an observation v lands in bin
// int(v*bins) clamped to [0, bins-1], so 0.0 lands in the first bin and
// 1.0 in the last; exact-extreme observations are additionally tallied in
// AtZero/AtOne (the counts the blind/capable classification keys on).
// Out-of-range observations clamp to the edge bins.
type Histogram struct {
	mu     sync.Mutex
	bins   []int64
	count  int64
	sum    float64
	atZero int64
	atOne  int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.observeLocked(v)
	h.mu.Unlock()
}

// ObserveAll records a batch of values under one lock — the per-response
// telemetry path of an instrumented Score call.
func (h *Histogram) ObserveAll(vs []float64) {
	if h == nil || len(vs) == 0 {
		return
	}
	h.mu.Lock()
	for _, v := range vs {
		h.observeLocked(v)
	}
	h.mu.Unlock()
}

func (h *Histogram) observeLocked(v float64) {
	if math.IsNaN(v) {
		return
	}
	switch {
	case v <= 0:
		h.atZero++
	case v >= 1:
		h.atOne++
	}
	idx := int(v * float64(len(h.bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.count++
	h.sum += v
}

// Counts returns a copy of the per-bin counts (nil on a nil receiver).
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, len(h.bins))
	copy(out, h.bins)
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Extremes returns the exact counts of observations at 0 and at 1.
func (h *Histogram) Extremes() (atZero, atOne int64) {
	if h == nil {
		return 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.atZero, h.atOne
}

// Timing accumulates durations recorded under one name: count, total, and
// the min/max extremes. Safe for concurrent use; no-op on a nil receiver.
type Timing struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Record adds one duration (negative durations clamp to zero).
func (t *Timing) Record(d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
}

// Stats returns the accumulated count, total, min, and max.
func (t *Timing) Stats() (count int64, total, min, max time.Duration) {
	if t == nil {
		return 0, 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count, t.total, t.min, t.max
}

// Total returns the accumulated total duration.
func (t *Timing) Total() time.Duration {
	_, total, _, _ := t.Stats()
	return total
}
