package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock ticks a fixed step per call, making span durations and event
// timestamps deterministic.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{
		t:    time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		step: step,
	}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Errorf("Counter(a) returned a different handle")
	}
	g := r.Gauge("b")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	// Non-finite sets are dropped so snapshots always marshal.
	g.Set(nan())
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge after NaN set = %v, want 2.5", got)
	}
}

func nan() float64 { z := 0.0; return z / z }

func TestCounterConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
}

// TestHistogramEdgeBins pins the bin placement of the exact extremes,
// mirroring eval.Profile semantics: 0.0 lands in the first bin and 1.0 in
// the last, with both tallied in the AtZero/AtOne exact counts.
func TestHistogramEdgeBins(t *testing.T) {
	r := New()
	h := r.Histogram("resp", 10)
	h.Observe(0.0)
	h.Observe(1.0)
	h.Observe(0.05) // interior of the first bin
	h.Observe(0.95) // interior of the last bin
	h.Observe(0.5)

	bins := h.Counts()
	if len(bins) != 10 {
		t.Fatalf("bins = %d, want 10", len(bins))
	}
	if bins[0] != 2 {
		t.Errorf("first bin = %d, want 2 (0.0 and 0.05)", bins[0])
	}
	if bins[9] != 2 {
		t.Errorf("last bin = %d, want 2 (1.0 and 0.95)", bins[9])
	}
	if bins[5] != 1 {
		t.Errorf("bin 5 = %d, want 1 (0.5)", bins[5])
	}
	atZero, atOne := h.Extremes()
	if atZero != 1 || atOne != 1 {
		t.Errorf("extremes = (%d, %d), want (1, 1)", atZero, atOne)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}

	// Out-of-range observations clamp to the edge bins.
	h.ObserveAll([]float64{-0.5, 1.5})
	bins = h.Counts()
	if bins[0] != 3 || bins[9] != 3 {
		t.Errorf("after clamped observations bins = %v, want edges 3/3", bins)
	}
}

func TestSpanNesting(t *testing.T) {
	r := New()
	clock := newFakeClock(10 * time.Millisecond)
	r.SetClock(clock.Now)

	outer := r.Span("corpus/build")
	inner := outer.Child("train")
	if inner.Name() != "corpus/build/train" {
		t.Errorf("child span name = %q", inner.Name())
	}
	if d := inner.End(); d != 10*time.Millisecond {
		t.Errorf("inner duration = %v, want 10ms", d)
	}
	if d := outer.End(); d != 30*time.Millisecond {
		t.Errorf("outer duration = %v, want 30ms", d)
	}
	count, total, _, _ := r.Timing("corpus/build").Stats()
	if count != 1 || total != 30*time.Millisecond {
		t.Errorf("outer timing = (%d, %v)", count, total)
	}
}

func TestTimingStats(t *testing.T) {
	r := New()
	tm := r.Timing("x")
	tm.Record(5 * time.Millisecond)
	tm.Record(15 * time.Millisecond)
	tm.Record(-time.Second) // clamps to zero
	count, total, min, max := tm.Stats()
	if count != 3 || total != 20*time.Millisecond || min != 0 || max != 15*time.Millisecond {
		t.Errorf("timing stats = (%d, %v, %v, %v)", count, total, min, max)
	}
}

func TestEventLogDeterministic(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.SetClock(newFakeClock(0).Now)
	l.Emit("cell", Fields{"window": 3, "detector": "stide", "ms": 1.5})
	want := `{"ts":"2026-08-05T12:00:00.000Z","event":"cell","detector":"stide","ms":1.5,"window":3}` + "\n"
	if buf.String() != want {
		t.Errorf("event line:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestEventLogReservedAndUnmarshalable(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.SetClock(newFakeClock(0).Now)
	l.Emit("x", Fields{"event": "spoof", "ts": "spoof", "ch": make(chan int)})
	line := buf.String()
	if strings.Contains(line, "spoof") {
		t.Errorf("reserved keys leaked into %q", line)
	}
	if !strings.Contains(line, `"ch":`) {
		t.Errorf("unmarshalable field dropped entirely: %q", line)
	}
}

// TestNilSafety exercises every entry point on nil receivers — the
// disabled path instrumented code relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.SetClock(time.Now)
	r.SetEventLog(nil)
	r.Event("e", Fields{"a": 1})
	r.Counter("c").Inc()
	r.Counter("c").Add(2)
	if r.Counter("c").Value() != 0 {
		t.Errorf("nil counter has a value")
	}
	r.Gauge("g").Set(1)
	if r.Gauge("g").Value() != 0 {
		t.Errorf("nil gauge has a value")
	}
	h := r.Histogram("h", 10)
	h.Observe(0.5)
	h.ObserveAll([]float64{0.1})
	if h.Count() != 0 || h.Counts() != nil {
		t.Errorf("nil histogram recorded")
	}
	r.Timing("t").Record(time.Second)
	r.RecordDuration("t", time.Second)
	sp := r.Span("s")
	if sp.Child("x").End() != 0 || sp.End() != 0 || sp.Name() != "" {
		t.Errorf("nil span recorded")
	}
	var l *EventLog
	l.SetClock(time.Now)
	l.Emit("e", nil)
	snap := r.Snapshot()
	if snap.Schema != SchemaVersion || len(snap.Counters) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Errorf("nil WriteSnapshot: %v", err)
	}
}

// TestSpanEndIdempotent is the regression test for the double-record bug:
// End used to record the elapsed duration into the Timing on every call, so
// a defer sp.End() after an explicit End() double-counted the region.
func TestSpanEndIdempotent(t *testing.T) {
	r := New()
	clock := newFakeClock(10 * time.Millisecond)
	r.SetClock(clock.Now)

	sp := r.Span("cell/stide")
	if d := sp.End(); d != 10*time.Millisecond {
		t.Fatalf("first End = %v, want 10ms", d)
	}
	if d := sp.End(); d != 0 {
		t.Errorf("second End = %v, want 0 (no-op)", d)
	}
	count, total, _, _ := r.Timing("cell/stide").Stats()
	if count != 1 || total != 10*time.Millisecond {
		t.Errorf("timing after double End = (%d, %v), want (1, 10ms)", count, total)
	}
}
