package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// seededTracer builds the fixed trace behind the Chrome-export golden: a
// main-lane corpus span with a child, two worker-lane cells, a laneless
// (async) DB build, and one instant — every event shape the exporter emits.
func seededTracer() *Tracer {
	tr, advance := manualTracer(32)

	build := tr.Start("corpus/build", "corpus")
	build.SetLane(LaneMain)
	train := build.Child("corpus/build/train", "")
	advance(40 * time.Millisecond)
	train.End()
	advance(10 * time.Millisecond)
	build.End()

	db := tr.Start("seq/db", "db")
	db.SetAttrInt("width", 5)
	advance(15 * time.Millisecond)
	db.End()

	cell0 := tr.Start("cell/stide", "cell")
	cell0.SetLane(0)
	cell0.SetAttr("detector", "stide")
	cell0.SetAttrInt("window", 5)
	cell0.SetAttrInt("size", 7)
	cell1 := tr.Start("cell/markov", "cell")
	cell1.SetLane(1)
	cell1.SetAttr("detector", "markov")
	advance(20 * time.Millisecond)
	cell0.End()
	advance(5 * time.Millisecond)
	cell1.End()

	tr.Instant("online/escalated", "alarm", TraceAttr{Key: "position", Value: "42"})
	return tr
}

// TestWriteChromeGolden byte-compares the export against the committed
// golden: the format is an external contract (Perfetto, chrome://tracing,
// diagnose -trace) and must only change deliberately.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := seededTracer().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	path := filepath.Join("testdata", "trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestChromeRoundTrip: exporting and re-reading reconstructs the span events
// — the property diagnose -trace depends on.
func TestChromeRoundTrip(t *testing.T) {
	tr := seededTracer()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	meta, spans, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatalf("ReadChromeTrace: %v", err)
	}
	if meta.Schema != TraceSchemaVersion {
		t.Errorf("schema = %q, want %s", meta.Schema, TraceSchemaVersion)
	}
	if meta.TraceID != tr.TraceID() {
		t.Errorf("trace id = %d, want %d", meta.TraceID, tr.TraceID())
	}
	if meta.Total != 6 || meta.Dropped != 0 {
		t.Errorf("total/dropped = %d/%d, want 6/0", meta.Total, meta.Dropped)
	}

	orig := tr.Snapshot()
	if len(spans) != len(orig) {
		t.Fatalf("round-tripped %d spans, want %d", len(spans), len(orig))
	}
	bySpanID := map[uint64]SpanEvent{}
	for _, ev := range spans {
		bySpanID[ev.ID] = ev
	}
	for _, want := range orig {
		got, ok := bySpanID[want.ID]
		if !ok {
			t.Errorf("span %d (%s) lost in round trip", want.ID, want.Name)
			continue
		}
		// The reader restores lanes for thread-track spans; async spans come
		// back as LaneAsync by construction. TraceID rides in otherData.
		want.TraceID = meta.TraceID
		got.Attrs = sortedAttrs(got.Attrs)
		want.Attrs = sortedAttrs(want.Attrs)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("span %s round trip:\n got %+v\nwant %+v", want.Name, got, want)
		}
	}
}

// sortedAttrs normalizes attribute order (the JSON args map loses it).
func sortedAttrs(attrs []TraceAttr) []TraceAttr {
	out := append([]TraceAttr(nil), attrs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Key < out[j-1].Key; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestReadChromeTraceRejectsForeignSchema(t *testing.T) {
	doc := `{"displayTimeUnit":"ms","otherData":{"schema":"someone.else/v9"},"traceEvents":[]}`
	if _, _, err := ReadChromeTrace(strings.NewReader(doc)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	if _, _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteChromeNilTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil tracer WriteChrome: %v", err)
	}
	meta, spans, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatalf("re-reading nil export: %v", err)
	}
	if meta.Schema != TraceSchemaVersion || len(spans) != 0 {
		t.Errorf("nil export = %+v, %d spans", meta, len(spans))
	}
}

func TestWriteChromeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := seededTracer().WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, spans, err := ReadChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 6 {
		t.Errorf("file round trip kept %d spans, want 6", len(spans))
	}
}

func TestTracerStatus(t *testing.T) {
	st := seededTracer().Status()
	if st.Schema != TraceSchemaVersion {
		t.Errorf("schema = %q", st.Schema)
	}
	if st.Total != 6 || len(st.Spans) != 6 {
		t.Fatalf("total=%d spans=%d, want 6/6", st.Total, len(st.Spans))
	}
	var cell SpanStatus
	for _, ss := range st.Spans {
		if ss.Name == "cell/stide" {
			cell = ss
		}
	}
	if cell.Lane != 0 || cell.DurMs != 20 || cell.Attrs["detector"] != "stide" {
		t.Errorf("cell/stide status = %+v", cell)
	}

	var nilTracer *Tracer
	if st := nilTracer.Status(); st.Schema != TraceSchemaVersion || len(st.Spans) != 0 {
		t.Errorf("nil tracer status = %+v", st)
	}
}
