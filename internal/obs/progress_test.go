package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.SetClock(time.Now)
	p.SetPhase("grid")
	p.SetRunInfo(Fields{"cmd": "x"})
	p.AttachEvents(nil)
	p.SetHeartbeat(time.Second)
	p.StartMap("m", 3, 12)
	p.RowStarted("m", 2)
	p.RowFinished("m", 2)
	if got := p.CellDone("m"); got != 0 {
		t.Errorf("nil CellDone = %d", got)
	}
	if got := p.CellReplayed("m"); got != 0 {
		t.Errorf("nil CellReplayed = %d", got)
	}
	p.FinishMap("m")
	s := p.Status()
	if s.Schema != RunzSchemaVersion || s.ETASeconds != -1 || len(s.Maps) != 0 {
		t.Errorf("nil Status = %+v", s)
	}
}

func TestProgressTracksGrid(t *testing.T) {
	p := NewProgress()
	p.SetClock(newFakeClock(100 * time.Millisecond).Now)
	p.SetPhase("grid")
	p.SetRunInfo(Fields{"cmd": "perfmap"})
	p.StartMap("stide", 3, 6)

	p.RowStarted("stide", 2)
	p.RowStarted("stide", 3)
	for i := 0; i < 4; i++ {
		p.CellDone("stide")
	}
	p.RowFinished("stide", 2)

	s := p.Status()
	if s.Phase != "grid" || s.Run["cmd"] != "perfmap" {
		t.Errorf("status header = %+v", s)
	}
	if s.CellsDone != 4 || s.CellsTotal != 6 {
		t.Errorf("cells %d/%d, want 4/6", s.CellsDone, s.CellsTotal)
	}
	if len(s.Maps) != 1 {
		t.Fatalf("maps = %+v", s.Maps)
	}
	m := s.Maps[0]
	if m.Name != "stide" || m.RowsTotal != 3 || m.RowsStarted != 2 || m.RowsDone != 1 || m.Done {
		t.Errorf("map status = %+v", m)
	}
	if len(m.ActiveWindows) != 1 || m.ActiveWindows[0] != 3 {
		t.Errorf("active windows = %v, want [3]", m.ActiveWindows)
	}
	// Cells complete every 100ms on the fake clock, so the rolling rate is
	// ~10 cells/sec and 2 remaining cells are ~0.2s away.
	if s.CellsPerSec < 9.9 || s.CellsPerSec > 10.1 {
		t.Errorf("rolling rate = %v, want ~10", s.CellsPerSec)
	}
	if s.ETASeconds < 0.19 || s.ETASeconds > 0.21 {
		t.Errorf("ETA = %v, want ~0.2", s.ETASeconds)
	}

	p.CellDone("stide")
	p.CellDone("stide")
	p.RowFinished("stide", 3)
	p.FinishMap("stide")
	s = p.Status()
	if s.CellsDone != s.CellsTotal {
		t.Errorf("cells %d/%d after completion", s.CellsDone, s.CellsTotal)
	}
	if s.ETASeconds != 0 {
		t.Errorf("ETA after completion = %v, want 0", s.ETASeconds)
	}
	if !s.Maps[0].Done || len(s.Maps[0].ActiveWindows) != 0 {
		t.Errorf("finished map status = %+v", s.Maps[0])
	}
}

// TestProgressCellReplayed pins the resumed-run accounting: replayed cells
// count toward completion and are reported separately at map and run level,
// but stay out of the rolling throughput ring — a burst of
// microsecond-replays must not poison the ETA of the cells still running.
func TestProgressCellReplayed(t *testing.T) {
	p := NewProgress()
	p.SetClock(newFakeClock(100 * time.Millisecond).Now)
	p.StartMap("stide", 2, 10)

	for i := 0; i < 3; i++ {
		p.CellReplayed("stide")
	}
	for i := 0; i < 4; i++ {
		p.CellDone("stide")
	}

	s := p.Status()
	if s.CellsDone != 7 || s.CellsReplayed != 3 {
		t.Errorf("run cells %d done / %d replayed, want 7/3", s.CellsDone, s.CellsReplayed)
	}
	m := s.Maps[0]
	if m.CellsDone != 7 || m.CellsReplayed != 3 {
		t.Errorf("map cells %d done / %d replayed, want 7/3", m.CellsDone, m.CellsReplayed)
	}
	// Only the 4 live cells (100ms apart on the fake clock) feed the rate:
	// ~10 cells/sec, with 3 cells remaining ~0.3s away. Were the replays in
	// the ring, the rate would read far higher and the ETA near zero.
	if s.CellsPerSec < 9.9 || s.CellsPerSec > 10.1 {
		t.Errorf("rolling rate = %v, want ~10 (replays must stay out of the ring)", s.CellsPerSec)
	}
	if s.ETASeconds < 0.29 || s.ETASeconds > 0.31 {
		t.Errorf("ETA = %v, want ~0.3", s.ETASeconds)
	}

	// Replays against an unknown map only advance the run-wide count.
	if got := p.CellReplayed("nosuch"); got != 8 {
		t.Errorf("CellReplayed(nosuch) = %d, want 8", got)
	}
}

// TestProgressRestartAccumulates pins the sweep-driver pattern: rebuilding
// a family's map per parameter point accumulates totals instead of
// clobbering them.
func TestProgressRestartAccumulates(t *testing.T) {
	p := NewProgress()
	p.StartMap("tstide", 2, 4)
	p.CellDone("tstide")
	p.FinishMap("tstide")
	p.StartMap("tstide", 2, 4)
	s := p.Status()
	if len(s.Maps) != 1 {
		t.Fatalf("maps = %+v", s.Maps)
	}
	m := s.Maps[0]
	if m.CellsTotal != 8 || m.CellsDone != 1 || m.Done {
		t.Errorf("accumulated map = %+v", m)
	}
}

func TestProgressHeartbeat(t *testing.T) {
	var log bytes.Buffer
	reg := New()
	reg.SetEventLog(NewEventLog(&log))

	p := NewProgress()
	p.SetClock(newFakeClock(300 * time.Millisecond).Now)
	p.AttachEvents(reg)
	p.SetHeartbeat(time.Second)
	p.SetPhase("grid")
	p.StartMap("m", 1, 100)
	for i := 0; i < 10; i++ {
		p.CellDone("m")
	}
	out := log.String()
	beats := strings.Count(out, `"event":"run.heartbeat"`)
	// 10 cells at 300ms apart span 2.7s; with a 1s interval that is 3
	// heartbeats (the first due beat fires immediately, then every >=1s).
	if beats < 2 || beats > 4 {
		t.Errorf("heartbeats = %d, want a few:\n%s", beats, out)
	}
	if !strings.Contains(out, `"cellsTotal":100`) || !strings.Contains(out, `"phase":"grid"`) {
		t.Errorf("heartbeat payload missing fields:\n%s", out)
	}
}

// TestProgressConcurrent exercises the tracker from many goroutines (the
// shape BuildMapCorpus drives at -j N) under the race detector.
func TestProgressConcurrent(t *testing.T) {
	p := NewProgress()
	p.StartMap("m", 8, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.RowStarted("m", w)
			for c := 0; c < 8; c++ {
				p.CellDone("m")
				p.Status() // concurrent scrape
			}
			p.RowFinished("m", w)
		}(w)
	}
	wg.Wait()
	s := p.Status()
	if s.CellsDone != 64 || s.Maps[0].RowsDone != 8 {
		t.Errorf("final status = %+v", s)
	}
}
