package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// AlertSchemaVersion identifies the alert-journal NDJSON schema: one
// AlertRecord per line, every line self-describing via its schema field so a
// journal survives being concatenated across runs or truncated mid-write.
const AlertSchemaVersion = "adiv.alerts/v1"

// Alert dispositions. Every alert enters the journal as DispositionRaised
// when a detector's response crosses its threshold; a corroboration pipeline
// then resolves it to DispositionEscalated (a second family agreed within
// the veto window) or DispositionSuppressed (the window expired unanswered).
// The invariant raised = escalated + suppressed + pending holds per family.
const (
	DispositionRaised     = "raised"
	DispositionEscalated  = "escalated"
	DispositionSuppressed = "suppressed"
)

// AlertRecord is one line of the alert journal: which detector alarmed on
// which symbol position, at what response score against what threshold, and
// how the alert was ultimately dispositioned.
type AlertRecord struct {
	Schema string `json:"schema"`
	TS     string `json:"ts"`
	// Tenant identifies whose stream alarmed in a multi-tenant serving
	// deployment; empty (and omitted) in the single-stream drivers, so the
	// field is additive to the adiv.alerts/v1 schema.
	Tenant      string  `json:"tenant,omitempty"`
	Position    int     `json:"position"`
	Detector    string  `json:"detector"`
	Score       float64 `json:"score"`
	Threshold   float64 `json:"threshold"`
	Disposition string  `json:"disposition"`
}

// DefaultAlertRingLines is the /alertz retention the drivers install.
const DefaultAlertRingLines = 512

// AlertJournal is an append-only NDJSON stream of AlertRecords plus a
// bounded in-memory tail, so one journal serves both the durable -alerts
// file and the live /alertz endpoint. Appends happen only when an alarm
// fires — off the per-push hot path — so the journal may allocate; writes
// are serialized by a mutex. A nil journal discards everything, the same
// disabled-path contract as the rest of this package.
type AlertJournal struct {
	mu     sync.Mutex
	w      io.Writer // durable sink; may be nil (ring-only journal)
	now    func() time.Time
	lines  [][]byte // retained tail for /alertz
	next   int
	total  int64
	counts map[string]int64 // per-disposition totals
}

// NewAlertJournal returns a journal appending NDJSON lines to w (nil keeps
// only the in-memory tail) and retaining the last DefaultAlertRingLines
// records for /alertz.
func NewAlertJournal(w io.Writer) *AlertJournal {
	return &AlertJournal{
		w:      w,
		now:    time.Now,
		lines:  make([][]byte, DefaultAlertRingLines),
		counts: make(map[string]int64),
	}
}

// SetClock replaces the journal's time source (tests use a deterministic
// fake).
func (j *AlertJournal) SetClock(now func() time.Time) {
	if j == nil || now == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.now = now
}

// Append records one alert. The record's Schema and TS fields are stamped by
// the journal; the caller fills the rest. Serialization failures are
// swallowed — telemetry must never fail the run.
func (j *AlertJournal) Append(rec AlertRecord) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Schema = AlertSchemaVersion
	rec.TS = j.now().UTC().Format("2006-01-02T15:04:05.000Z07:00")
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	if j.w != nil {
		j.w.Write(data) //nolint:errcheck // telemetry must never fail the run
	}
	j.lines[j.next] = data
	j.next = (j.next + 1) % len(j.lines)
	j.total++
	j.counts[rec.Disposition]++
}

// Total returns how many records were ever appended.
func (j *AlertJournal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Counts returns the per-disposition totals (nil on a nil or empty journal).
func (j *AlertJournal) Counts() map[string]int64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.counts) == 0 {
		return nil
	}
	out := make(map[string]int64, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// WriteTail copies the last n retained records, oldest first, to w; n < 0
// means every retained record, n == 0 writes nothing. This is the /alertz
// read path.
func (j *AlertJournal) WriteTail(w io.Writer, n int) (int64, error) {
	if j == nil || n == 0 {
		return 0, nil
	}
	j.mu.Lock()
	size := len(j.lines)
	skip := 0
	if n >= 0 {
		populated := 0
		for i := 0; i < size; i++ {
			if len(j.lines[(j.next+i)%size]) > 0 {
				populated++
			}
		}
		if populated > n {
			skip = populated - n
		}
	}
	out := make([]byte, 0, 1024)
	for i := 0; i < size; i++ {
		line := j.lines[(j.next+i)%size]
		if len(line) == 0 {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		out = append(out, line...)
	}
	j.mu.Unlock()
	written, err := w.Write(out)
	return int64(written), err
}

// ReadAlerts parses an alert-journal NDJSON stream. Blank lines are skipped;
// lines with an unknown schema fail loudly (a journal from a future format
// must not be silently misread), as does malformed JSON — except a final
// partial line, which is dropped: a run killed mid-append must not poison
// its journal for diagnosis.
func ReadAlerts(r io.Reader) ([]AlertRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []AlertRecord
	var deferred error // unmarshal failure pending a later line to prove it wasn't the torn tail
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if deferred != nil {
			return nil, deferred
		}
		var rec AlertRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			deferred = fmt.Errorf("obs: alert journal line %d: %w", lineNo, err)
			continue
		}
		if rec.Schema != AlertSchemaVersion {
			return nil, fmt.Errorf("obs: alert journal line %d: schema %q (want %q)", lineNo, rec.Schema, AlertSchemaVersion)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading alert journal: %w", err)
	}
	return recs, nil
}

// ReadAlertsFile parses the alert journal at path.
func ReadAlertsFile(path string) ([]AlertRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	return ReadAlerts(f)
}
