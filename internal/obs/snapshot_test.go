package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildGoldenRegistry populates a registry with one of everything under a
// deterministic clock, so the serialized snapshot is byte-stable.
func buildGoldenRegistry() *Registry {
	r := New()
	r.SetClock(newFakeClock(10 * time.Millisecond).Now)
	r.Counter("gen/symbols").Add(120000)
	r.Counter("eval/cells/stide").Add(112)
	r.Gauge("eval/throughput_sps/stide").Set(250000)
	h := r.Histogram("detector/responses/stide", 10)
	h.ObserveAll([]float64{0, 0, 0.5, 1})
	sp := r.Span("corpus/build")
	sp.Child("train").End()
	sp.End()
	r.RecordDuration("train/stide/dw02", 25*time.Millisecond)
	r.Sketch("online/push_latency/stide").ObserveAll([]float64{1e-7, 2e-7, 2e-7, 4e-7})
	return r
}

// TestSnapshotGolden pins the metrics-snapshot JSON schema — stable field
// names and ordering — so downstream tooling (BENCH_*.json trajectory
// tracking, dashboards) can depend on it. Regenerate the golden file with
// UPDATE_GOLDEN=1 go test ./internal/obs after a deliberate schema change
// (which must also bump SchemaVersion).
func TestSnapshotGolden(t *testing.T) {
	r := buildGoldenRegistry()
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot schema drifted from golden file:\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestSnapshotValues(t *testing.T) {
	r := buildGoldenRegistry()
	s := r.Snapshot()
	if s.Schema != SchemaVersion {
		t.Errorf("schema = %q", s.Schema)
	}
	if s.Counters["gen/symbols"] != 120000 {
		t.Errorf("counter = %d", s.Counters["gen/symbols"])
	}
	hs := s.Histograms["detector/responses/stide"]
	if hs.Count != 4 || hs.AtZero != 2 || hs.AtOne != 1 {
		t.Errorf("histogram stats = %+v", hs)
	}
	if hs.Mean != hs.Sum/4 {
		t.Errorf("mean = %v, sum = %v", hs.Mean, hs.Sum)
	}
	ss := s.Spans["train/stide/dw02"]
	if ss.Count != 1 || ss.TotalMs != 25 || ss.MeanMs != 25 {
		t.Errorf("span stats = %+v", ss)
	}
	if s.Spans["corpus/build/train"].Count != 1 {
		t.Errorf("nested span missing: %+v", s.Spans)
	}
}

// TestSnapshotRoundTrip checks a snapshot survives JSON round-tripping —
// the contract -metrics-out consumers rely on.
func TestSnapshotRoundTrip(t *testing.T) {
	r := buildGoldenRegistry()
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Schema != SchemaVersion || back.Counters["gen/symbols"] != 120000 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestWriteSnapshotFile(t *testing.T) {
	r := buildGoldenRegistry()
	path := filepath.Join(t.TempDir(), "m.json")
	if err := r.WriteSnapshotFile(path); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("snapshot file is not valid JSON: %v", err)
	}
	if s.Schema != SchemaVersion {
		t.Errorf("schema = %q", s.Schema)
	}
}
