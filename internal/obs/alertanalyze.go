package obs

import (
	"fmt"
	"io"
	"sort"
)

// Alert-journal analysis: the offline digest `diagnose -alerts` prints.
// AnalyzeAlerts rolls a journal up per detector family (counts by
// disposition, alert rate over the covered position span, score quantiles
// via the same Sketch the live pipeline uses) and replays the watchdog
// rules over position buckets, so a finished run's journal answers the
// questions the live /healthz would have: did a detector go silent, did one
// saturate the pipeline, was there an alert storm.

// AlertAnalysisOptions tunes the offline watchdog replay.
type AlertAnalysisOptions struct {
	// Buckets is how many equal position buckets the covered span is split
	// into for storm and silence detection (< 1 keeps 20).
	Buckets int
	// StormBurst flags any bucket where one family raises at least this
	// many alerts (< 1 keeps 50).
	StormBurst int
	// SaturatedPer1k flags a family whose raised-alert rate exceeds this
	// many per 1000 positions (<= 0 keeps 100).
	SaturatedPer1k float64
	// SilentTailBuckets flags a family active in the journal's first half
	// that raises nothing in this many trailing buckets (< 1 keeps 5).
	SilentTailBuckets int
}

func (o AlertAnalysisOptions) withDefaults() AlertAnalysisOptions {
	if o.Buckets < 1 {
		o.Buckets = 20
	}
	if o.StormBurst < 1 {
		o.StormBurst = 50
	}
	if o.SaturatedPer1k <= 0 {
		o.SaturatedPer1k = 100
	}
	if o.SilentTailBuckets < 1 {
		o.SilentTailBuckets = 5
	}
	return o
}

// AlertReport is the digest of one alert journal.
type AlertReport struct {
	Total int
	// MinPosition/MaxPosition bound the symbol positions the journal covers.
	MinPosition, MaxPosition int
	// ByDisposition counts records by disposition across all families.
	ByDisposition map[string]int
	// Families rolls the journal up per detector, sorted by name.
	Families []AlertFamilyReport
	// Firings are the offline watchdog findings, sorted.
	Firings []string
}

// AlertFamilyReport is one detector family's slice of the journal.
type AlertFamilyReport struct {
	Detector  string
	Raised    int
	Escalated int
	// Suppressed counts explicit suppressions; Pending is raised alerts
	// with neither resolution (the run ended inside their veto window).
	Suppressed int
	Pending    int
	// RatePer1k is raised alerts per 1000 positions of the covered span.
	RatePer1k float64
	// Score summarizes the raised-alert response scores (sketch quantiles).
	Score SketchStats
}

// AnalyzeAlerts digests journal records into an AlertReport.
func AnalyzeAlerts(recs []AlertRecord, opts AlertAnalysisOptions) AlertReport {
	opts = opts.withDefaults()
	rep := AlertReport{Total: len(recs), ByDisposition: map[string]int{}}
	if len(recs) == 0 {
		return rep
	}

	rep.MinPosition, rep.MaxPosition = recs[0].Position, recs[0].Position
	type famAcc struct {
		AlertFamilyReport
		sketch *Sketch
		// raisedByBucket counts raised alerts per position bucket.
		raisedByBucket []int
	}
	fams := map[string]*famAcc{}
	for _, rec := range recs {
		if rec.Position < rep.MinPosition {
			rep.MinPosition = rec.Position
		}
		if rec.Position > rep.MaxPosition {
			rep.MaxPosition = rec.Position
		}
		rep.ByDisposition[rec.Disposition]++
	}
	span := rep.MaxPosition - rep.MinPosition + 1
	bucketOf := func(pos int) int {
		b := (pos - rep.MinPosition) * opts.Buckets / span
		if b >= opts.Buckets {
			b = opts.Buckets - 1
		}
		return b
	}
	for _, rec := range recs {
		f := fams[rec.Detector]
		if f == nil {
			f = &famAcc{
				AlertFamilyReport: AlertFamilyReport{Detector: rec.Detector},
				sketch:            NewSketch(),
				raisedByBucket:    make([]int, opts.Buckets),
			}
			fams[rec.Detector] = f
		}
		switch rec.Disposition {
		case DispositionRaised:
			f.Raised++
			f.sketch.Observe(rec.Score)
			f.raisedByBucket[bucketOf(rec.Position)]++
		case DispositionEscalated:
			f.Escalated++
		case DispositionSuppressed:
			f.Suppressed++
		}
	}

	var firings []string
	famNames := make([]string, 0, len(fams))
	for name := range fams {
		famNames = append(famNames, name)
	}
	sort.Strings(famNames)
	for _, name := range famNames {
		f := fams[name]
		f.Pending = f.Raised - f.Escalated - f.Suppressed
		if f.Pending < 0 {
			f.Pending = 0
		}
		f.RatePer1k = float64(f.Raised) * 1000 / float64(span)
		f.Score = f.sketch.Stats()
		rep.Families = append(rep.Families, f.AlertFamilyReport)

		// Offline watchdog replay over the position buckets.
		if f.RatePer1k > opts.SaturatedPer1k {
			firings = append(firings, fmt.Sprintf(
				"saturated: %s raised %.1f alerts/1k positions (bound %.1f)",
				name, f.RatePer1k, opts.SaturatedPer1k))
		}
		for b, n := range f.raisedByBucket {
			if n >= opts.StormBurst {
				firings = append(firings, fmt.Sprintf(
					"storm: %s raised %d alerts in bucket %d/%d (burst bound %d)",
					name, n, b+1, opts.Buckets, opts.StormBurst))
				break
			}
		}
		if tail := opts.SilentTailBuckets; tail < opts.Buckets {
			activeEarly, activeTail := false, false
			for b, n := range f.raisedByBucket {
				if n == 0 {
					continue
				}
				if b < opts.Buckets-tail {
					activeEarly = true
				} else {
					activeTail = true
				}
			}
			if activeEarly && !activeTail {
				firings = append(firings, fmt.Sprintf(
					"silent: %s raised nothing in the last %d/%d position buckets",
					name, tail, opts.Buckets))
			}
		}
	}
	sort.Strings(firings)
	rep.Firings = firings
	return rep
}

// WriteText renders the report as the human-readable `diagnose -alerts`
// section.
func (rep AlertReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Alert journal: %d record(s)", rep.Total)
	if rep.Total == 0 {
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, " over positions %d..%d\n", rep.MinPosition, rep.MaxPosition)
	for _, d := range sortedKeys(rep.ByDisposition) {
		fmt.Fprintf(w, "  %-11s %d\n", d, rep.ByDisposition[d])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %10s %10s %10s %10s\n",
		"detector", "raised", "escal", "suppr", "pending", "per1k", "p50", "p90", "p99")
	for _, f := range rep.Families {
		fmt.Fprintf(w, "%-10s %8d %8d %8d %8d %10.2f %10.4f %10.4f %10.4f\n",
			f.Detector, f.Raised, f.Escalated, f.Suppressed, f.Pending,
			f.RatePer1k, f.Score.P50, f.Score.P90, f.Score.P99)
	}
	fmt.Fprintln(w)
	if len(rep.Firings) == 0 {
		fmt.Fprintln(w, "Watchdog: no rule fired")
		return
	}
	fmt.Fprintf(w, "Watchdog: %d firing(s)\n", len(rep.Firings))
	for _, f := range rep.Firings {
		fmt.Fprintf(w, "  %s\n", f)
	}
}
