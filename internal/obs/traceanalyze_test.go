package obs

import (
	"testing"
	"time"
)

const ms = time.Millisecond

// span is a SpanEvent literal helper for analysis tests.
func span(id, parent uint64, name, cat string, lane int, start, dur time.Duration, attrs ...TraceAttr) SpanEvent {
	return SpanEvent{ID: id, Parent: parent, Name: name, Cat: cat, Lane: lane, Start: start, Dur: dur, Attrs: attrs}
}

func det(name string) TraceAttr { return TraceAttr{Key: "detector", Value: name} }

func TestAnalyzeTraceCriticalPath(t *testing.T) {
	// A(0-10) -> B(10-30) -> C(35-40) chains for 35ms of summed cost;
	// D(0-25) could also precede C but its chain is only 30ms.
	spans := []SpanEvent{
		span(1, 0, "A", "train", 0, 0, 10*ms),
		span(2, 0, "B", "cell", 1, 10*ms, 20*ms),
		span(3, 0, "C", "cell", 0, 35*ms, 5*ms),
		span(4, 0, "D", "cell", 2, 0, 25*ms),
	}
	rep := AnalyzeTrace(spans, 0)
	if rep.Wall != 40*ms {
		t.Errorf("wall = %v, want 40ms", rep.Wall)
	}
	if rep.CriticalTotal != 35*ms {
		t.Errorf("critical total = %v, want 35ms", rep.CriticalTotal)
	}
	var names []string
	for _, ev := range rep.CriticalPath {
		names = append(names, ev.Name)
	}
	if len(names) != 3 || names[0] != "A" || names[1] != "B" || names[2] != "C" {
		t.Errorf("critical path = %v, want [A B C]", names)
	}
}

func TestAnalyzeTraceCriticalPathSkipsZeroDuration(t *testing.T) {
	spans := []SpanEvent{
		span(1, 0, "replayed", "replay", LaneAsync, 5*ms, 0),
		span(2, 0, "live", "cell", 0, 0, 10*ms),
	}
	rep := AnalyzeTrace(spans, 0)
	if len(rep.CriticalPath) != 1 || rep.CriticalPath[0].Name != "live" {
		t.Errorf("critical path = %+v, want [live]", rep.CriticalPath)
	}
	if rep.ReplaySpans != 1 || rep.CellSpans != 1 {
		t.Errorf("replay/cell = %d/%d, want 1/1", rep.ReplaySpans, rep.CellSpans)
	}
}

func TestAnalyzeTraceLanes(t *testing.T) {
	spans := []SpanEvent{
		span(1, 0, "a", "cell", 0, 0, 10*ms),
		span(2, 0, "b", "cell", 0, 30*ms, 10*ms),
		span(3, 0, "c", "cell", 1, 0, 40*ms),
		// Async spans have no worker identity and stay out of occupancy.
		span(4, 0, "d", "db", LaneAsync, 0, 40*ms),
	}
	rep := AnalyzeTrace(spans, 0)
	if len(rep.Lanes) != 2 {
		t.Fatalf("lanes = %+v, want 2", rep.Lanes)
	}
	l0, l1 := rep.Lanes[0], rep.Lanes[1]
	if l0.Lane != 0 || l0.Spans != 2 || l0.Busy != 20*ms || l0.Occupancy != 0.5 {
		t.Errorf("lane 0 = %+v", l0)
	}
	if l1.Lane != 1 || l1.Busy != 40*ms || l1.Occupancy != 1.0 {
		t.Errorf("lane 1 = %+v", l1)
	}
}

func TestAnalyzeTraceLaneIntervalUnion(t *testing.T) {
	// Overlapping intervals on one lane (a merged shard trace) must not
	// double-count busy time.
	spans := []SpanEvent{
		span(1, 0, "a", "cell", 0, 0, 20*ms),
		span(2, 0, "b", "cell", 0, 10*ms, 20*ms),
	}
	rep := AnalyzeTrace(spans, 0)
	if rep.Lanes[0].Busy != 30*ms {
		t.Errorf("overlapping busy = %v, want 30ms (union)", rep.Lanes[0].Busy)
	}
}

func TestAnalyzeTraceSelfTimes(t *testing.T) {
	spans := []SpanEvent{
		span(1, 0, "cell/stide", "cell", 0, 0, 30*ms),
		span(2, 1, "score/stide", "score", LaneAsync, 5*ms, 25*ms),
		span(3, 0, "cell/stide", "cell", 0, 40*ms, 10*ms),
	}
	rep := AnalyzeTrace(spans, 2)
	if len(rep.TopSelf) != 2 {
		t.Fatalf("topSelf = %+v", rep.TopSelf)
	}
	// score/stide: 25ms self. cell/stide: 40ms total, 25ms consumed by the
	// child, 15ms self.
	if rep.TopSelf[0].Name != "score/stide" || rep.TopSelf[0].Self != 25*ms {
		t.Errorf("topSelf[0] = %+v", rep.TopSelf[0])
	}
	if rep.TopSelf[1].Name != "cell/stide" || rep.TopSelf[1].Self != 15*ms || rep.TopSelf[1].Total != 40*ms {
		t.Errorf("topSelf[1] = %+v", rep.TopSelf[1])
	}
}

func TestAnalyzeTraceTopNBounds(t *testing.T) {
	var spans []SpanEvent
	for i := uint64(1); i <= 20; i++ {
		spans = append(spans, span(i, 0, string(rune('a'+i)), "cell", 0, 0, time.Duration(i)*ms))
	}
	if rep := AnalyzeTrace(spans, 3); len(rep.TopSelf) != 3 {
		t.Errorf("topN=3 kept %d", len(rep.TopSelf))
	}
	if rep := AnalyzeTrace(spans, 0); len(rep.TopSelf) != 10 {
		t.Errorf("topN=0 kept %d, want default 10", len(rep.TopSelf))
	}
}

func TestAnalyzeTraceFamilies(t *testing.T) {
	spans := []SpanEvent{
		span(1, 0, "train/stide/dw05", "train", 0, 0, 10*ms, det("stide")),
		span(2, 0, "cell/stide", "cell", 0, 10*ms, 20*ms, det("stide")),
		span(3, 2, "score/stide", "score", LaneAsync, 12*ms, 15*ms, det("stide")),
		span(4, 0, "cell/stide", "replay", LaneAsync, 30*ms, 1*ms, det("stide")),
		span(5, 0, "map/stide", "map", 0, 0, 31*ms, det("stide")),
		span(6, 0, "cell/markov", "cell", 1, 0, 5*ms, det("markov")),
		span(7, 0, "seq/db", "db", LaneAsync, 0, 4*ms), // no detector attr
	}
	rep := AnalyzeTrace(spans, 0)
	if len(rep.Families) != 2 {
		t.Fatalf("families = %+v, want 2", rep.Families)
	}
	st := rep.Families[0]
	if st.Detector != "stide" {
		t.Fatalf("families[0] = %s, want stide (largest)", st.Detector)
	}
	if st.Train != 10*ms || st.Cell != 21*ms || st.Other != 31*ms {
		t.Errorf("stide train/cell/other = %v/%v/%v", st.Train, st.Cell, st.Other)
	}
	// Score time is reported but NOT in Total: it already ran inside a cell.
	if st.Score != 15*ms {
		t.Errorf("stide score = %v, want 15ms", st.Score)
	}
	if st.Total != 62*ms {
		t.Errorf("stide total = %v, want 62ms (train+cell+other, score excluded)", st.Total)
	}
	if rep.Families[1].Detector != "markov" || rep.Families[1].Total != 5*ms {
		t.Errorf("families[1] = %+v", rep.Families[1])
	}
}

func TestAnalyzeTraceEmptyAndInstants(t *testing.T) {
	rep := AnalyzeTrace(nil, 0)
	if rep.SpanCount != 0 || rep.Wall != 0 || rep.CriticalPath != nil {
		t.Errorf("empty analysis = %+v", rep)
	}
	rep = AnalyzeTrace([]SpanEvent{
		{ID: 1, Name: "mark", Cat: "alarm", Instant: true, Start: 5 * ms},
	}, 0)
	if rep.InstantCount != 1 || rep.SpanCount != 0 {
		t.Errorf("instants-only analysis = %+v", rep)
	}
}
