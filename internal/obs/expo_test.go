package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// seededRegistry builds the fixed registry state behind the exposition
// golden: a deterministic clock, one counter, one gauge, one histogram, and
// one timing.
func seededRegistry() *Registry {
	r := New()
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tick := 0
	r.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 250 * time.Millisecond)
	})
	r.Counter("eval/cells/stide").Add(112)
	r.Gauge("online/threshold").Set(0.95)
	h := r.Histogram("responses/stide", 4)
	for _, v := range []float64{0, 0.1, 0.3, 0.3, 0.8, 1, 1} {
		h.Observe(v)
	}
	r.Timing("cell/stide").Record(1500 * time.Millisecond)
	r.Timing("cell/stide").Record(500 * time.Millisecond)
	sk := r.Sketch("score_latency/stide")
	for _, v := range []float64{0.001, 0.002, 0.002, 0.004, 0.050} {
		sk.Observe(v)
	}
	return r
}

// TestWritePromGolden byte-compares the rendered exposition against the
// committed golden: the format is an external contract (Prometheus
// scrapers) and must only change deliberately.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := seededRegistry().WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm on nil registry: %v", err)
	}
	if !strings.Contains(buf.String(), "adiv_uptime_seconds 0") {
		t.Errorf("nil-registry exposition = %q", buf.String())
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := seededRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 7 observations into 4 bins over [0,1]: {0, 0.1} land in bin 0,
	// {0.3, 0.3} in bin 1, and {0.8, 1, 1} in bin 3 (1.0 clamps to the last
	// bin). Buckets must be cumulative and +Inf must equal the count.
	for _, want := range []string{
		`adiv_responses_stide_bucket{le="0.25"} 2`,
		`adiv_responses_stide_bucket{le="0.5"} 4`,
		`adiv_responses_stide_bucket{le="0.75"} 4`,
		`adiv_responses_stide_bucket{le="1"} 7`,
		`adiv_responses_stide_bucket{le="+Inf"} 7`,
		`adiv_responses_stide_count 7`,
		`# TYPE adiv_eval_cells_stide counter`,
		`adiv_eval_cells_stide 112`,
		`adiv_online_threshold 0.95`,
		`adiv_cell_stide_seconds_sum 2`,
		`adiv_cell_stide_seconds_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"cell/stide":       "adiv_cell_stide",
		"train/nn/dw08":    "adiv_train_nn_dw08",
		"weird-name.x y":   "adiv_weird_name_x_y",
		"UpperCase":        "adiv_UpperCase",
		"throughput_sps/a": "adiv_throughput_sps_a",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
