package obs

import (
	"sort"
	"sync"
	"time"
)

// RunzSchemaVersion identifies the /runz JSON schema served by the status
// server and rendered by RunStatus.
const RunzSchemaVersion = "adiv.runz/v1"

// rateWindow is how many recent cell-completion timestamps the rolling
// throughput estimate keeps. A multi-minute grid run completes cells every
// few hundred milliseconds, so 64 samples average over tens of seconds —
// long enough to be stable, short enough to track the slow NN rows.
const rateWindow = 64

// defaultHeartbeat is how often CellDone emits a run.heartbeat event to the
// attached registry's event log.
const defaultHeartbeat = 10 * time.Second

// Progress tracks a run's grid progress for live introspection: which
// performance maps are being built, per-map row and cell completion, a
// rolling cell-throughput estimate, and the derived ETA. The grid builders
// call its lifecycle methods (StartMap, RowStarted, RowFinished, CellDone,
// FinishMap) from their worker goroutines; the status server's /runz
// handler calls Status concurrently. All methods are safe for concurrent
// use and are no-ops on a nil receiver, so the disabled path (no -status
// flag, nil tracker threaded through eval.Options) carries a single pointer
// test — the same contract as the rest of this package.
//
// The callbacks sit at row and cell granularity, outside the detectors'
// Score hot paths: a cell is thousands-to-millions of scored windows, so
// the mutex here is contended at most a few times per second.
type Progress struct {
	mu    sync.Mutex
	now   func() time.Time
	start time.Time

	phase string
	shard string // "i/N" when this process covers one shard of the grid
	run   Fields // static run configuration, from run.start
	extra Fields // live workload counts, replaced wholesale by SetExtra

	reg       *Registry // heartbeat event sink; nil emits nothing
	beatEvery time.Duration
	lastBeat  time.Time

	order  []*mapProgress
	byName map[string]*mapProgress

	cellsDone, cellsTotal int
	cellsReplayed         int

	// recent is a ring of the last rateWindow cell-completion times;
	// recentN counts completions ever recorded through it.
	recent  [rateWindow]time.Time
	recentN int
}

// mapProgress is the tracked state of one performance-map build.
type mapProgress struct {
	name                  string
	rowsTotal             int
	rowsStarted, rowsDone int
	active                map[int]bool // windows currently training/scoring
	cellsDone, cellsTotal int
	cellsReplayed         int
	finished              bool
}

// NewProgress returns an empty tracker whose run clock starts now.
func NewProgress() *Progress {
	p := &Progress{
		now:       time.Now,
		byName:    make(map[string]*mapProgress),
		beatEvery: defaultHeartbeat,
	}
	p.start = p.now()
	return p
}

// SetClock replaces the tracker's time source (tests use a deterministic
// fake) and restarts the run epoch from the new clock.
func (p *Progress) SetClock(now func() time.Time) {
	if p == nil || now == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
	p.start = now()
}

// AttachEvents routes periodic run.heartbeat events to reg's event log; a
// nil registry (or one without an event log) emits nothing.
func (p *Progress) AttachEvents(reg *Registry) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
}

// SetHeartbeat sets the minimum interval between run.heartbeat events
// (non-positive intervals keep the default).
func (p *Progress) SetHeartbeat(d time.Duration) {
	if p == nil || d <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.beatEvery = d
}

// SetPhase records the run's current phase ("corpus", "grid", ...).
func (p *Progress) SetPhase(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.phase = phase
}

// SetShard records the process's shard identity ("i/N"); /runz serves it so
// a fleet aggregator (diagnose -status-url a,b,c) can label each worker's
// slice of the grid. Empty means the run covers the whole grid.
func (p *Progress) SetShard(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shard = label
}

// SetRunInfo records the run's static configuration (the run.start fields);
// /runz serves it verbatim. The fields are copied.
func (p *Progress) SetRunInfo(fields Fields) {
	if p == nil {
		return
	}
	cp := make(Fields, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.run = cp
}

// SetExtra records live workload fields served verbatim under /runz's
// "extra" key — the serving daemon's tenant/accepted/scored counts, or any
// other progress shape the grid-oriented map tracking does not fit. The
// fields are copied, and each call replaces the previous set wholesale (a
// published map is never mutated, so a concurrent Status marshal is safe).
func (p *Progress) SetExtra(fields Fields) {
	if p == nil {
		return
	}
	cp := make(Fields, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.extra = cp
}

// StartMap registers a performance-map build of rows rows and cells total
// cells. Re-registering a name accumulates onto the existing entry (the
// sweep drivers rebuild a family's map per parameter point).
func (p *Progress) StartMap(name string, rows, cells int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.byName[name]
	if m == nil {
		m = &mapProgress{name: name, active: make(map[int]bool)}
		p.byName[name] = m
		p.order = append(p.order, m)
	}
	m.rowsTotal += rows
	m.cellsTotal += cells
	m.finished = false
	p.cellsTotal += cells
}

// RowStarted records that the row for the given window began (its detector
// is constructed and queued for training).
func (p *Progress) RowStarted(name string, window int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m := p.byName[name]; m != nil {
		m.rowsStarted++
		m.active[window] = true
	}
}

// RowFinished records that the row for the given window completed (all its
// cells evaluated, or the row failed).
func (p *Progress) RowFinished(name string, window int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m := p.byName[name]; m != nil {
		m.rowsDone++
		delete(m.active, window)
	}
}

// CellDone records one completed grid cell for the named map, feeds the
// rolling throughput estimate, and emits a run.heartbeat event when one is
// due. It returns the run-wide completed-cell count.
func (p *Progress) CellDone(name string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	if m := p.byName[name]; m != nil {
		m.cellsDone++
	}
	p.cellsDone++
	done := p.cellsDone
	now := p.now()
	p.recent[p.recentN%rateWindow] = now
	p.recentN++

	var beat Fields
	var reg *Registry
	if p.reg != nil && now.Sub(p.lastBeat) >= p.beatEvery {
		p.lastBeat = now
		rate, eta := p.rateLocked()
		beat = Fields{
			"phase":       p.phase,
			"cellsDone":   p.cellsDone,
			"cellsTotal":  p.cellsTotal,
			"cellsPerSec": rate,
			"etaSeconds":  eta,
		}
		reg = p.reg
	}
	p.mu.Unlock()
	if beat != nil {
		// Emitted outside the tracker's lock: the event log serializes on
		// its own mutex and must not hold up Status scrapes.
		reg.Event("run.heartbeat", beat)
	}
	return done
}

// CellReplayed records one grid cell satisfied from a checkpoint journal
// instead of evaluated live. Replayed cells count toward completion (and
// the run-wide total returned) but are kept out of the rolling throughput
// ring: replays land in microseconds, and folding them into the rate would
// poison the ETA for the cells that still have to run.
func (p *Progress) CellReplayed(name string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m := p.byName[name]; m != nil {
		m.cellsDone++
		m.cellsReplayed++
	}
	p.cellsDone++
	p.cellsReplayed++
	return p.cellsDone
}

// FinishMap marks the named map's build complete.
func (p *Progress) FinishMap(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m := p.byName[name]; m != nil {
		m.finished = true
	}
}

// rateLocked derives the rolling throughput (cells/sec over the recent
// ring) and the ETA in seconds (-1 when unknown). Callers hold p.mu.
func (p *Progress) rateLocked() (rate, etaSeconds float64) {
	n := p.recentN
	if n > rateWindow {
		n = rateWindow
	}
	if n >= 2 {
		newest := p.recent[(p.recentN-1)%rateWindow]
		oldest := p.recent[p.recentN%rateWindow] // overwritten next; ring start
		if p.recentN <= rateWindow {
			oldest = p.recent[0]
		}
		if span := newest.Sub(oldest).Seconds(); span > 0 {
			rate = float64(n-1) / span
		}
	}
	remaining := p.cellsTotal - p.cellsDone
	switch {
	case remaining <= 0 && p.cellsTotal > 0:
		etaSeconds = 0
	case rate > 0 && remaining > 0:
		etaSeconds = float64(remaining) / rate
	default:
		etaSeconds = -1
	}
	return rate, etaSeconds
}

// MapStatus is the serialized progress of one performance-map build.
type MapStatus struct {
	Name          string `json:"name"`
	RowsTotal     int    `json:"rowsTotal"`
	RowsStarted   int    `json:"rowsStarted"`
	RowsDone      int    `json:"rowsDone"`
	ActiveWindows []int  `json:"activeWindows,omitempty"`
	CellsDone     int    `json:"cellsDone"`
	CellsTotal    int    `json:"cellsTotal"`
	// CellsReplayed is how many of CellsDone were satisfied from a
	// checkpoint journal rather than evaluated live (omitted when zero, so
	// uncheckpointed runs keep their existing /runz shape).
	CellsReplayed int  `json:"cellsReplayed,omitempty"`
	Done          bool `json:"done"`
}

// RunStatus is the machine-readable run progress served at /runz.
type RunStatus struct {
	Schema string `json:"schema"`
	Run    Fields `json:"run,omitempty"`
	// Extra carries live workload fields (SetExtra) — e.g. the serving
	// daemon's tenant and accepted/scored event counts; omitted when unset,
	// so the grid drivers' /runz shape is unchanged.
	Extra Fields `json:"extra,omitempty"`
	Phase string `json:"phase,omitempty"`
	// Shard is the process's shard identity ("i/N") when the run covers one
	// shard of a distributed grid; empty for whole-grid runs.
	Shard      string  `json:"shard,omitempty"`
	StartedAt  string  `json:"startedAt"`
	UptimeMs   float64 `json:"uptimeMs"`
	CellsDone  int     `json:"cellsDone"`
	CellsTotal int     `json:"cellsTotal"`
	// CellsReplayed counts cells satisfied from a checkpoint journal; the
	// live-evaluated count is CellsDone - CellsReplayed.
	CellsReplayed int         `json:"cellsReplayed,omitempty"`
	CellsPerSec   float64     `json:"cellsPerSec"`
	ETASeconds    float64     `json:"etaSeconds"`
	Maps          []MapStatus `json:"maps"`
	// Quantiles is the live quantile-sketch view (per-push latency,
	// per-family response distributions) the /runz handler fills from the
	// registry; omitted when no sketches are registered, so pre-sketch
	// consumers keep their existing /runz shape.
	Quantiles map[string]SketchStats `json:"quantiles,omitempty"`
}

// Status captures the tracker's current state. A nil tracker yields an
// empty (but schema-tagged) status with ETASeconds -1.
func (p *Progress) Status() RunStatus {
	s := RunStatus{Schema: RunzSchemaVersion, ETASeconds: -1, Maps: []MapStatus{}}
	if p == nil {
		return s
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	s.Run = p.run
	s.Extra = p.extra
	s.Phase = p.phase
	s.Shard = p.shard
	s.StartedAt = p.start.UTC().Format(time.RFC3339Nano)
	s.UptimeMs = durationMs(now.Sub(p.start))
	s.CellsDone = p.cellsDone
	s.CellsTotal = p.cellsTotal
	s.CellsReplayed = p.cellsReplayed
	s.CellsPerSec, s.ETASeconds = p.rateLocked()
	for _, m := range p.order {
		ms := MapStatus{
			Name:          m.name,
			RowsTotal:     m.rowsTotal,
			RowsStarted:   m.rowsStarted,
			RowsDone:      m.rowsDone,
			CellsDone:     m.cellsDone,
			CellsTotal:    m.cellsTotal,
			CellsReplayed: m.cellsReplayed,
			Done:          m.finished,
		}
		for w := range m.active {
			ms.ActiveWindows = append(ms.ActiveWindows, w)
		}
		sort.Ints(ms.ActiveWindows)
		s.Maps = append(s.Maps, ms)
	}
	return s
}
