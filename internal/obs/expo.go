package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this package renders (version 0.0.4, the format every Prometheus
// scraper accepts).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders the registry's current state in Prometheus text
// exposition format v0.0.4: counters and gauges as single samples,
// histograms as cumulative le-labeled buckets with _sum and _count,
// quantile sketches as summaries with quantile-labeled p50/p90/p99 samples,
// and accumulated timings as summaries (_sum in seconds, _count). Metric names
// are the registry names prefixed with "adiv_" and sanitized to the
// Prometheus grammar ("cell/stide" becomes "adiv_cell_stide"); within each
// family names render in sorted order, so the exposition is byte-stable for
// a given registry state and clock. A nil registry renders only the uptime
// gauge of an empty snapshot.
func (r *Registry) WriteProm(w io.Writer) error {
	return WriteProm(w, r.Snapshot())
}

// WriteProm renders one snapshot in Prometheus text exposition format; see
// (*Registry).WriteProm.
func WriteProm(w io.Writer, s Snapshot) error {
	var buf bytes.Buffer
	buf.WriteString("# TYPE adiv_uptime_seconds gauge\n")
	fmt.Fprintf(&buf, "adiv_uptime_seconds %s\n", promFloat(s.UptimeMs/1e3))

	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&buf, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&buf, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&buf, "# TYPE %s histogram\n", pn)
		// The registry's fixed-bin histograms cover [0,1]; bin i holds
		// observations below (i+1)/bins, so the cumulative bucket bounds
		// are the bin upper edges. Out-of-range observations clamp into
		// the edge bins, so +Inf equals the total count.
		cum := int64(0)
		for i, c := range h.Bins {
			cum += c
			fmt.Fprintf(&buf, "%s_bucket{le=%q} %d\n", pn, promFloat(float64(i+1)/float64(len(h.Bins))), cum)
		}
		fmt.Fprintf(&buf, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&buf, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&buf, "%s_count %d\n", pn, h.Count)
	}
	for _, name := range sortedKeys(s.Sketches) {
		sk := s.Sketches[name]
		pn := promName(name)
		fmt.Fprintf(&buf, "# TYPE %s summary\n", pn)
		fmt.Fprintf(&buf, "%s{quantile=\"0.5\"} %s\n", pn, promFloat(sk.P50))
		fmt.Fprintf(&buf, "%s{quantile=\"0.9\"} %s\n", pn, promFloat(sk.P90))
		fmt.Fprintf(&buf, "%s{quantile=\"0.99\"} %s\n", pn, promFloat(sk.P99))
		fmt.Fprintf(&buf, "%s_sum %s\n", pn, promFloat(sk.Sum))
		fmt.Fprintf(&buf, "%s_count %d\n", pn, sk.Count)
	}
	for _, name := range sortedKeys(s.Spans) {
		t := s.Spans[name]
		pn := promName(name) + "_seconds"
		fmt.Fprintf(&buf, "# TYPE %s summary\n", pn)
		fmt.Fprintf(&buf, "%s_sum %s\n", pn, promFloat(t.TotalMs/1e3))
		fmt.Fprintf(&buf, "%s_count %d\n", pn, t.Count)
	}
	_, err := w.Write(buf.Bytes())
	if err != nil {
		return fmt.Errorf("obs: writing exposition: %w", err)
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, prefixing the repository namespace.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name) + 5)
	sb.WriteString("adiv_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float sample value in the shortest exact form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
