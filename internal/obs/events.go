package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Fields carries the structured payload of one event.
type Fields map[string]any

// EventLog writes structured events as NDJSON (one JSON object per line):
//
//	{"ts":"2026-08-05T12:00:00.000Z","event":"cell","detector":"stide",...}
//
// The "ts" and "event" keys always come first and the remaining field keys
// are sorted, so lines are byte-stable for a given clock and payload.
// Writes are serialized by a mutex; a nil *EventLog discards everything.
type EventLog struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// NewEventLog returns an event log writing NDJSON lines to w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, now: time.Now}
}

// SetClock replaces the log's time source (tests use a deterministic fake).
func (l *EventLog) SetClock(now func() time.Time) {
	if l == nil || now == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// lineBufPool recycles the per-line assembly buffers across Emit calls (and
// across logs — the pool is package-level). A -progress grid run emits one
// line per cell; without the pool every line allocated and grew a fresh
// buffer.
var lineBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Emit writes one event line. Field values marshal with encoding/json;
// unmarshalable values degrade to their fmt.Sprintf("%v") string form. The
// line reaches the underlying writer as a single Write call, so sinks that
// retain lines (the /eventz ring) see exactly one event per Write and must
// copy: the buffer is pooled and reused by later emissions.
func (l *EventLog) Emit(event string, fields Fields) {
	if l == nil || l.w == nil || event == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	buf := lineBufPool.Get().(*bytes.Buffer)
	defer lineBufPool.Put(buf)
	buf.Reset()
	buf.WriteString(`{"ts":`)
	buf.Write(mustJSON(l.now().UTC().Format("2006-01-02T15:04:05.000Z07:00")))
	buf.WriteString(`,"event":`)
	buf.Write(mustJSON(event))
	keys := make([]string, 0, len(fields))
	for k := range fields {
		if k == "ts" || k == "event" || k == "" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf.WriteByte(',')
		buf.Write(mustJSON(k))
		buf.WriteByte(':')
		buf.Write(mustJSON(fields[k]))
	}
	buf.WriteString("}\n")
	l.w.Write(buf.Bytes()) //nolint:errcheck // telemetry must never fail the run
}

// mustJSON marshals v, degrading to a quoted string on error.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	return b
}
