package report

import (
	"errors"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/ensemble"
	"adiv/internal/eval"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// failAfter is an io.Writer that errors after n successful writes,
// exercising every error-propagation branch of the renderers.
type failAfter struct {
	n int
}

var errWriter = errors.New("writer broke")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWriter
	}
	f.n--
	return len(p), nil
}

// countingWriter tallies successful writes.
type countingWriter struct{ n int }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n++
	return len(p), nil
}

func TestWriteMapPropagatesWriterErrors(t *testing.T) {
	m := sampleMap(t)
	// Count the renderer's writes, then fail at every proper prefix: each
	// must surface the writer's error rather than panic or succeed.
	var counter countingWriter
	if err := WriteMap(&counter, m); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < counter.n; n++ {
		if err := WriteMap(&failAfter{n: n}, m); !errors.Is(err, errWriter) {
			t.Fatalf("WriteMap with writer failing after %d of %d writes: %v", n, counter.n, err)
		}
	}
}

func TestWriteMapCSVPropagatesWriterErrors(t *testing.T) {
	m := sampleMap(t)
	for n := 0; n < 3; n++ {
		if err := WriteMapCSV(&failAfter{n: n}, m); err == nil {
			t.Fatalf("WriteMapCSV with writer failing after %d writes succeeded", n)
		}
	}
}

func TestWriteIncidentSpanPropagatesWriterErrors(t *testing.T) {
	a := alphabet.MustNew(8)
	p, err := inject.At(make(seq.Stream, 30), seq.Stream{7, 7}, 15)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		if err := WriteIncidentSpan(&failAfter{n: n}, a, p, 4); err == nil {
			t.Fatalf("WriteIncidentSpan with writer failing after %d writes succeeded", n)
		}
	}
}

func TestWriteSimilarityPropagatesWriterErrors(t *testing.T) {
	a := alphabet.MustNew(8)
	for n := 0; n < 2; n++ {
		err := WriteSimilarity(&failAfter{n: n}, a, seq.Stream{0, 1}, seq.Stream{0, 2}, []int{1, 0}, 1, 3)
		if err == nil {
			t.Fatalf("WriteSimilarity with writer failing after %d writes succeeded", n)
		}
	}
}

func TestWriteSuppressionPropagatesWriterErrors(t *testing.T) {
	r := ensemble.SuppressionResult{
		Primary:    eval.AlarmStats{Detector: "a", Positions: 10},
		Suppressed: eval.AlarmStats{Detector: "a&b", Positions: 10},
	}
	for n := 0; n < 3; n++ {
		if err := WriteSuppression(&failAfter{n: n}, r); err == nil {
			t.Fatalf("WriteSuppression with writer failing after %d writes succeeded", n)
		}
	}
}

func TestWriteRelationMatrixPropagatesWriterErrors(t *testing.T) {
	m1 := sampleMap(t)
	for n := 0; n < 3; n++ {
		if err := ensemble.WriteRelationMatrix(&failAfter{n: n}, []*eval.Map{m1, m1}); err == nil {
			t.Fatalf("WriteRelationMatrix with writer failing after %d writes succeeded", n)
		}
	}
}
