// Package report renders the evaluation's outputs — performance maps,
// incident-span diagrams, similarity walkthroughs, and alarm tables — as
// plain text and CSV, mirroring the figures of the paper.
package report

import (
	"fmt"
	"io"
	"strings"

	"adiv/internal/alphabet"
	"adiv/internal/ensemble"
	"adiv/internal/eval"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// Map glyphs: the paper marks detection cells with a star and leaves blind
// regions empty.
const (
	glyphCapable   = '*'
	glyphWeak      = 'w'
	glyphBlind     = '.'
	glyphUndefined = ' '
)

func glyph(o eval.Outcome) rune {
	switch o {
	case eval.Capable:
		return glyphCapable
	case eval.Weak:
		return glyphWeak
	case eval.Blind:
		return glyphBlind
	default:
		return glyphUndefined
	}
}

// WriteMap renders a performance map in the layout of the paper's Figures
// 3–6: detector window on the y-axis (descending), anomaly size on the
// x-axis. Stars mark cells where the detector registered a maximal response
// in the incident span; 'w' marks weak responses; '.' marks blindness.
func WriteMap(w io.Writer, m *eval.Map) error {
	if _, err := fmt.Fprintf(w, "Performance map: %s (window %d-%d vs anomaly size %d-%d)\n",
		m.Detector, m.MinWindow, m.MaxWindow, m.MinSize, m.MaxSize); err != nil {
		return err
	}
	for dw := m.MaxWindow; dw >= m.MinWindow; dw-- {
		var row strings.Builder
		fmt.Fprintf(&row, "DW %2d |", dw)
		for size := m.MinSize; size <= m.MaxSize; size++ {
			fmt.Fprintf(&row, " %c", glyph(m.Outcome(size, dw)))
		}
		if _, err := fmt.Fprintln(w, row.String()); err != nil {
			return err
		}
	}
	var axis strings.Builder
	axis.WriteString("      +")
	for size := m.MinSize; size <= m.MaxSize; size++ {
		axis.WriteString("--")
	}
	axis.WriteString("\n   AS  ")
	for size := m.MinSize; size <= m.MaxSize; size++ {
		fmt.Fprintf(&axis, " %d", size%10)
	}
	if _, err := fmt.Fprintln(w, axis.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "legend: %c capable (maximal response)  %c weak  %c blind\n",
		glyphCapable, glyphWeak, glyphBlind)
	return err
}

// WriteMapCSV emits the map as size,window,outcome,maxResponse rows.
func WriteMapCSV(w io.Writer, m *eval.Map) error {
	if _, err := fmt.Fprintln(w, "detector,anomaly_size,window,outcome,max_response"); err != nil {
		return err
	}
	for _, a := range m.Cells() {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%s,%.6f\n",
			m.Detector, a.AnomalySize, a.Window, a.Outcome, a.MaxResponse); err != nil {
			return err
		}
	}
	return nil
}

// WriteIncidentSpan renders the Figure-2 diagram for one placement and
// window width: the injected anomaly, the boundary sequences, and the
// incident span extent.
func WriteIncidentSpan(w io.Writer, a *alphabet.Alphabet, p inject.Placement, width int) error {
	lo, hi, ok := p.IncidentSpan(width)
	if !ok {
		return fmt.Errorf("report: no incident span for width %d", width)
	}
	from := lo
	to := hi + width
	if to > len(p.Stream) {
		to = len(p.Stream)
	}
	var line, marks strings.Builder
	for i := from; i < to; i++ {
		name := a.Name(p.Stream[i])
		line.WriteString(name)
		line.WriteByte(' ')
		mark := "+"
		if i >= p.Start && i < p.Start+p.AnomalyLen {
			mark = "F"
		}
		marks.WriteString(mark)
		marks.WriteString(strings.Repeat(" ", len(name)))
	}
	if _, err := fmt.Fprintf(w, "incident span for DW=%d, AS=%d: window starts %d..%d (%d windows)\n",
		width, p.AnomalyLen, lo, hi, hi-lo+1); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line.String()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, marks.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "F: injected foreign sequence; +: background elements involved in boundary sequences")
	return err
}

// WriteSimilarity renders the Figure-7 walkthrough: the per-position weights
// of the Lane & Brodley similarity calculation between two sequences.
func WriteSimilarity(w io.Writer, a *alphabet.Alphabet, x, y seq.Stream, weights []int, total, maximum int) error {
	if _, err := fmt.Fprintf(w, "  seq A: %s\n  seq B: %s\n", a.Format(x), a.Format(y)); err != nil {
		return err
	}
	var ws strings.Builder
	for i, wt := range weights {
		if i > 0 {
			ws.WriteByte(' ')
		}
		fmt.Fprintf(&ws, "%d", wt)
	}
	_, err := fmt.Fprintf(w, "  weights: %s\n  similarity %d of maximum %d\n", ws.String(), total, maximum)
	return err
}

// WriteProfile renders a response-distribution profile as an ASCII
// histogram, the operator's view when choosing a detection threshold.
func WriteProfile(w io.Writer, p eval.Profile) error {
	if _, err := fmt.Fprintf(w, "response profile: %s (DW=%d), %d responses, mean %.4f\n",
		p.Detector, p.Window, p.Summary.N, p.Summary.Mean); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  exactly 0: %d   exactly 1: %d\n", p.AtZero, p.AtOne); err != nil {
		return err
	}
	maxCount := 0
	for _, c := range p.Histogram {
		if c > maxCount {
			maxCount = c
		}
	}
	bins := len(p.Histogram)
	for i, c := range p.Histogram {
		barLen := 0
		if maxCount > 0 {
			barLen = c * 40 / maxCount
		}
		lo := float64(i) / float64(bins)
		hi := float64(i+1) / float64(bins)
		if _, err := fmt.Fprintf(w, "  [%.2f,%.2f) %8d %s\n",
			lo, hi, c, strings.Repeat("#", barLen)); err != nil {
			return err
		}
	}
	return nil
}

// WriteSuppression renders a Section-7 suppression comparison as a small
// table: the primary detector's alarm statistics alone and gated by the
// suppressor.
func WriteSuppression(w io.Writer, r ensemble.SuppressionResult) error {
	row := func(label string, s eval.AlarmStats) error {
		_, err := fmt.Fprintf(w, "  %-16s hit=%-5v span_alarms=%-4d false_alarms=%-5d fa_rate=%.5f\n",
			label, s.Hit, s.SpanAlarms, s.FalseAlarms, s.FalseAlarmRate())
		return err
	}
	if _, err := fmt.Fprintf(w, "suppression (DW=%d, threshold=%.3f):\n", r.Primary.Window, r.Primary.Threshold); err != nil {
		return err
	}
	if err := row(r.Primary.Detector, r.Primary); err != nil {
		return err
	}
	return row(r.Suppressed.Detector, r.Suppressed)
}
