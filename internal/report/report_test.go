package report

import (
	"strings"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/ensemble"
	"adiv/internal/eval"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

func sampleMap(t *testing.T) *eval.Map {
	t.Helper()
	m, err := eval.NewMap("stide", 2, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for size := 2; size <= 4; size++ {
		for dw := 2; dw <= 4; dw++ {
			o := eval.Blind
			if dw >= size {
				o = eval.Capable
			}
			m.Set(eval.Assessment{
				Detector: "stide", AnomalySize: size, Window: dw,
				Outcome: o, MaxResponse: map[eval.Outcome]float64{eval.Capable: 1}[o],
			})
		}
	}
	return m
}

func TestWriteMap(t *testing.T) {
	var sb strings.Builder
	if err := WriteMap(&sb, sampleMap(t)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Performance map: stide",
		"DW  4 | * * *",
		"DW  3 | * * .",
		"DW  2 | * . .",
		"legend:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMapCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteMapCSV(&sb, sampleMap(t)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "detector,anomaly_size,window,outcome,max_response" {
		t.Errorf("header %q", lines[0])
	}
	if len(lines) != 10 { // header + 9 cells
		t.Errorf("%d lines, want 10", len(lines))
	}
	if !strings.Contains(sb.String(), "stide,2,2,capable,1.000000") {
		t.Errorf("missing expected row:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "stide,4,2,blind,0.000000") {
		t.Errorf("missing blind row:\n%s", sb.String())
	}
}

func TestWriteIncidentSpan(t *testing.T) {
	a := alphabet.MustNew(8)
	background := make(seq.Stream, 30)
	for i := range background {
		background[i] = alphabet.Symbol(i%6 + 1)
	}
	p, err := inject.At(background, seq.Stream{7, 0, 7}, 12)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteIncidentSpan(&sb, a, p, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "incident span for DW=5, AS=3") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "F F F") {
		t.Errorf("anomaly marks missing:\n%s", out)
	}
	if strings.Count(out, "F") != 4 { // 3 marks + legend "F:"
		t.Errorf("unexpected number of F marks:\n%s", out)
	}
	if err := WriteIncidentSpan(&sb, a, p, 1000); err == nil {
		t.Errorf("oversized width accepted")
	}
}

func TestWriteSimilarity(t *testing.T) {
	a := alphabet.MustNew(8)
	var sb strings.Builder
	err := WriteSimilarity(&sb, a, seq.Stream{0, 1, 2}, seq.Stream{0, 1, 3}, []int{1, 2, 0}, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"seq A: 0 1 2", "seq B: 0 1 3", "weights: 1 2 0", "similarity 3 of maximum 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteProfile(t *testing.T) {
	p := eval.Profile{
		Detector:  "markov",
		Window:    8,
		Histogram: []int{90, 5, 3, 2},
		AtZero:    80,
		AtOne:     2,
	}
	p.Summary.N = 100
	p.Summary.Mean = 0.08
	var sb strings.Builder
	if err := WriteProfile(&sb, p); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"response profile: markov (DW=8), 100 responses",
		"exactly 0: 80   exactly 1: 2",
		"[0.00,0.25)       90 ########################################",
		"[0.75,1.00)        2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSuppression(t *testing.T) {
	r := ensemble.SuppressionResult{
		Primary: eval.AlarmStats{
			Detector: "markov", Window: 8, Threshold: 0.98,
			Hit: true, SpanAlarms: 5, FalseAlarms: 37, Positions: 8000,
		},
		Suppressed: eval.AlarmStats{
			Detector: "markov&stide", Window: 8, Threshold: 0.98,
			Hit: true, SpanAlarms: 5, FalseAlarms: 0, Positions: 8000,
		},
	}
	var sb strings.Builder
	if err := WriteSuppression(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"markov", "markov&stide", "false_alarms=37", "false_alarms=0", "hit=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
