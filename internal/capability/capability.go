// Package capability operationalizes the paper's Figure 1: the decision
// chain that determines whether an anomaly detector can possibly have
// detected an attack, and if not, which stage broke.
//
//	A. Does the attack manifest in monitored data?
//	B. Is the detector analyzing the data containing the manifestation?
//	C. Is the manifestation anomalous?
//	D. Is the anomalous manifestation detectable by the detector in
//	   question (under some parameterization)?
//	E. Is the detector correctly tuned to detect it (under the deployed
//	   parameterization)?
//
// Stages A and B are facts about the monitoring setup, supplied by the
// caller. Stage C is decided against the training data (is the
// manifestation foreign, or at least rare, at any evaluated width). Stage D
// asks whether any window length in the deployment family yields a maximal
// in-span response; stage E asks whether the deployed window does. The
// result pins the paper's distinction between "attack not detectable" and
// "detector mistuned" — the difference between Figures 3 and 5's blind
// regions and an unlucky parameter choice.
package capability

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/eval"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// Stage identifies one decision of the Figure-1 chain.
type Stage int

// Stage values, in chain order.
const (
	StageManifests Stage = iota + 1
	StageObserved
	StageAnomalous
	StageDetectable
	StageTuned
)

// String renders the stage as the paper labels it.
func (s Stage) String() string {
	switch s {
	case StageManifests:
		return "A: attack manifests in monitored data"
	case StageObserved:
		return "B: detector analyzes the containing data"
	case StageAnomalous:
		return "C: manifestation is anomalous"
	case StageDetectable:
		return "D: anomaly detectable by this detector"
	case StageTuned:
		return "E: detector tuned to detect it"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Inputs describes one attack/deployment pair to diagnose.
type Inputs struct {
	// Manifests and Observed are the monitoring facts of stages A and B.
	Manifests, Observed bool
	// TrainIndex indexes the training data (stage C).
	TrainIndex *seq.Index
	// RareCutoff is the rarity bound used for stage C's "anomalous"
	// judgment (a manifestation that is merely rare is still anomalous to
	// rare-sensitive detectors).
	RareCutoff float64
	// Placement is the manifestation embedded in the monitored stream.
	Placement inject.Placement
	// Factory builds the deployed detector family (stage D sweeps windows).
	Factory eval.Factory
	// MinWindow and MaxWindow bound the family sweep for stage D.
	MinWindow, MaxWindow int
	// DeployedWindow is the window the operator actually chose (stage E).
	DeployedWindow int
	// Train is the training stream the detectors learn from.
	Train seq.Stream
	// Opts classifies responses (capable floor).
	Opts eval.Options
}

// Verdict is the outcome of walking the chain.
type Verdict struct {
	// Detected is true when every stage passed.
	Detected bool
	// FailedAt is the first failing stage when Detected is false.
	FailedAt Stage
	// DetectableWindows lists the family's window lengths that yield a
	// maximal in-span response (computed during stage D; empty if the
	// chain broke earlier).
	DetectableWindows []int
}

// String summarizes the verdict.
func (v Verdict) String() string {
	if v.Detected {
		return "ATTACK DETECTED"
	}
	return fmt.Sprintf("ATTACK NOT DETECTED (failed at %s)", v.FailedAt)
}

// Evaluate walks the Figure-1 chain for the inputs.
func Evaluate(in Inputs) (Verdict, error) {
	if err := validate(in); err != nil {
		return Verdict{}, err
	}
	if !in.Manifests {
		return Verdict{FailedAt: StageManifests}, nil
	}
	if !in.Observed {
		return Verdict{FailedAt: StageObserved}, nil
	}

	anomalous, err := isAnomalous(in.TrainIndex, in.Placement.Anomaly(), in.RareCutoff)
	if err != nil {
		return Verdict{}, err
	}
	if !anomalous {
		return Verdict{FailedAt: StageAnomalous}, nil
	}

	detectable, err := detectableWindows(in)
	if err != nil {
		return Verdict{}, err
	}
	if len(detectable) == 0 {
		return Verdict{FailedAt: StageDetectable}, nil
	}
	for _, w := range detectable {
		if w == in.DeployedWindow {
			return Verdict{Detected: true, DetectableWindows: detectable}, nil
		}
	}
	return Verdict{FailedAt: StageTuned, DetectableWindows: detectable}, nil
}

func validate(in Inputs) error {
	if in.TrainIndex == nil {
		return fmt.Errorf("capability: nil training index")
	}
	if in.Factory == nil {
		return fmt.Errorf("capability: nil detector factory")
	}
	if in.MinWindow < 1 || in.MaxWindow < in.MinWindow {
		return fmt.Errorf("capability: invalid window range [%d,%d]", in.MinWindow, in.MaxWindow)
	}
	if in.RareCutoff <= 0 || in.RareCutoff >= 1 {
		return fmt.Errorf("capability: rare cutoff %v outside (0,1)", in.RareCutoff)
	}
	return in.Opts.Validate()
}

// isAnomalous implements stage C: the manifestation is anomalous when it —
// or any window of it — is foreign or rare with respect to training.
func isAnomalous(ix *seq.Index, manifestation seq.Stream, rareCutoff float64) (bool, error) {
	if len(manifestation) == 0 {
		return false, nil
	}
	for width := 1; width <= len(manifestation); width++ {
		db, err := ix.DB(width)
		if err != nil {
			return false, err
		}
		for i := 0; i+width <= len(manifestation); i++ {
			w := manifestation[i : i+width]
			if db.IsForeign(w) || db.IsRare(w, rareCutoff) {
				return true, nil
			}
		}
	}
	return false, nil
}

// detectableWindows implements stage D: sweep the family and collect the
// window lengths whose trained detector registers a maximal response in
// the incident span.
func detectableWindows(in Inputs) ([]int, error) {
	var out []int
	for w := in.MinWindow; w <= in.MaxWindow; w++ {
		det, err := in.Factory(w)
		if err != nil {
			return nil, fmt.Errorf("capability: constructing detector (DW=%d): %w", w, err)
		}
		if err := det.Train(in.Train); err != nil {
			return nil, fmt.Errorf("capability: training (DW=%d): %w", w, err)
		}
		a, err := assess(det, in.Placement, in.Opts)
		if err != nil {
			return nil, err
		}
		if a == eval.Capable {
			out = append(out, w)
		}
	}
	return out, nil
}

func assess(det detector.Detector, p inject.Placement, opts eval.Options) (eval.Outcome, error) {
	a, err := eval.Assess(det, p, opts)
	if err != nil {
		return eval.Undefined, err
	}
	return a.Outcome, nil
}
