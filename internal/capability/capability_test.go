package capability

import (
	"strings"
	"testing"

	"adiv/internal/detector"
	"adiv/internal/detector/stide"
	"adiv/internal/eval"
	"adiv/internal/gen"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// fixture builds a shared generated training stream and a size-5 canonical
// MFS placement for the package's tests.
type fixture struct {
	train     seq.Stream
	ix        *seq.Index
	placement inject.Placement
}

var sharedFixture = func() func(t *testing.T) *fixture {
	var f *fixture
	return func(t *testing.T) *fixture {
		t.Helper()
		if f != nil {
			return f
		}
		cfg := gen.DefaultConfig()
		cfg.TrainLen = 120_000
		cfg.BackgroundLen = 1_500
		g, err := gen.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		train := g.Training()
		ix := seq.NewIndex(train)
		m, err := gen.CanonicalMFS(5)
		if err != nil {
			t.Fatal(err)
		}
		p, err := inject.Inject(ix, g.Background(), m, inject.Options{MinWidth: 2, MaxWidth: 8, ContextWidths: true})
		if err != nil {
			t.Fatal(err)
		}
		f = &fixture{train: train, ix: ix, placement: p}
		return f
	}
}()

func stideFactory(w int) (detector.Detector, error) { return stide.New(w) }

func baseInputs(f *fixture) Inputs {
	return Inputs{
		Manifests:      true,
		Observed:       true,
		TrainIndex:     f.ix,
		RareCutoff:     gen.RareCutoff,
		Placement:      f.placement,
		Factory:        stideFactory,
		MinWindow:      2,
		MaxWindow:      8,
		DeployedWindow: 6,
		Train:          f.train,
		Opts:           eval.DefaultOptions(),
	}
}

func TestChainDetected(t *testing.T) {
	f := sharedFixture(t)
	v, err := Evaluate(baseInputs(f))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Detected {
		t.Fatalf("verdict %v, want detected", v)
	}
	// Stide detects the size-5 MFS exactly at windows 5..8 of the sweep.
	want := []int{5, 6, 7, 8}
	if len(v.DetectableWindows) != len(want) {
		t.Fatalf("detectable windows %v, want %v", v.DetectableWindows, want)
	}
	for i := range want {
		if v.DetectableWindows[i] != want[i] {
			t.Errorf("detectable windows %v, want %v", v.DetectableWindows, want)
			break
		}
	}
	if !strings.Contains(v.String(), "DETECTED") {
		t.Errorf("String() = %q", v.String())
	}
}

func TestChainFailsAtManifest(t *testing.T) {
	f := sharedFixture(t)
	in := baseInputs(f)
	in.Manifests = false
	v, err := Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected || v.FailedAt != StageManifests {
		t.Errorf("verdict %+v", v)
	}
}

func TestChainFailsAtObserved(t *testing.T) {
	f := sharedFixture(t)
	in := baseInputs(f)
	in.Observed = false
	v, err := Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected || v.FailedAt != StageObserved {
		t.Errorf("verdict %+v", v)
	}
}

func TestChainFailsAtAnomalous(t *testing.T) {
	f := sharedFixture(t)
	in := baseInputs(f)
	// A manifestation of pure common-cycle data is not anomalous at all.
	normal, err := inject.At(gen.PureCycle(1_500), gen.PureCycle(6), 750)
	if err != nil {
		t.Fatal(err)
	}
	in.Placement = normal
	v, err := Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected || v.FailedAt != StageAnomalous {
		t.Errorf("verdict %+v", v)
	}
}

func TestChainFailsAtTuned(t *testing.T) {
	f := sharedFixture(t)
	in := baseInputs(f)
	in.DeployedWindow = 3 // shorter than the size-5 anomaly: mistuned
	v, err := Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected || v.FailedAt != StageTuned {
		t.Errorf("verdict %+v", v)
	}
	if len(v.DetectableWindows) == 0 {
		t.Errorf("mistuned verdict should still report the detectable windows")
	}
	if !strings.Contains(v.String(), "E:") {
		t.Errorf("String() = %q", v.String())
	}
}

func TestChainFailsAtDetectable(t *testing.T) {
	f := sharedFixture(t)
	in := baseInputs(f)
	// Constrain the sweep below the anomaly size: no window of this
	// (artificially narrowed) family detects it.
	in.MinWindow, in.MaxWindow, in.DeployedWindow = 2, 4, 3
	v, err := Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected || v.FailedAt != StageDetectable {
		t.Errorf("verdict %+v", v)
	}
}

func TestEvaluateValidation(t *testing.T) {
	f := sharedFixture(t)
	mutations := []func(*Inputs){
		func(in *Inputs) { in.TrainIndex = nil },
		func(in *Inputs) { in.Factory = nil },
		func(in *Inputs) { in.MinWindow = 0 },
		func(in *Inputs) { in.MaxWindow = 1 },
		func(in *Inputs) { in.RareCutoff = 0 },
		func(in *Inputs) { in.Opts = eval.Options{CapableAt: 2} },
	}
	for i, mutate := range mutations {
		in := baseInputs(f)
		mutate(&in)
		if _, err := Evaluate(in); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStageStrings(t *testing.T) {
	for s := StageManifests; s <= StageTuned; s++ {
		if str := s.String(); !strings.Contains(str, ":") {
			t.Errorf("Stage(%d).String() = %q", s, str)
		}
	}
	if str := Stage(99).String(); !strings.Contains(str, "99") {
		t.Errorf("unknown stage string %q", str)
	}
}
