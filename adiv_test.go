package adiv_test

import (
	"strings"
	"testing"

	"adiv"
)

func TestDetectorConstructors(t *testing.T) {
	for _, name := range adiv.AllDetectorNames() {
		det, err := adiv.NewDetector(name, 4)
		if err != nil {
			t.Errorf("NewDetector(%q): %v", name, err)
			continue
		}
		if det.Name() != name {
			t.Errorf("NewDetector(%q).Name() = %q", name, det.Name())
		}
		if det.Window() != 4 {
			t.Errorf("NewDetector(%q).Window() = %d", name, det.Window())
		}
		if det.Extent() < 4 || det.Extent() > 5 {
			t.Errorf("NewDetector(%q).Extent() = %d", name, det.Extent())
		}
	}
	if _, err := adiv.NewDetector("nosuch", 4); err == nil {
		t.Errorf("NewDetector of unknown name succeeded")
	}
	if _, err := adiv.NewDetector(adiv.DetectorStide, 0); err == nil {
		t.Errorf("NewDetector with window 0 succeeded")
	}
}

func TestDetectorFactory(t *testing.T) {
	for _, name := range adiv.AllDetectorNames() {
		factory, opts, err := adiv.DetectorFactory(name)
		if err != nil {
			t.Errorf("DetectorFactory(%q): %v", name, err)
			continue
		}
		if err := opts.Validate(); err != nil {
			t.Errorf("DetectorFactory(%q) options invalid: %v", name, err)
		}
		det, err := factory(3)
		if err != nil || det.Window() != 3 {
			t.Errorf("factory(%q)(3): %v, %v", name, det, err)
		}
	}
	if _, _, err := adiv.DetectorFactory("nosuch"); err == nil {
		t.Errorf("DetectorFactory of unknown name succeeded")
	}
}

func TestEvalOptionRegimes(t *testing.T) {
	for name, opts := range map[string]adiv.EvalOptions{
		"default":        adiv.DefaultEvalOptions(),
		"rare-sensitive": adiv.RareSensitiveEvalOptions(),
		"neural-net":     adiv.NeuralNetEvalOptions(),
	} {
		if err := opts.Validate(); err != nil {
			t.Errorf("%s options invalid: %v", name, err)
		}
	}
	if adiv.RareSensitiveEvalOptions().CapableAt >= adiv.DefaultEvalOptions().CapableAt {
		t.Errorf("rare-sensitive regime should lower the capable floor")
	}
}

func TestCanonicalMFSFacade(t *testing.T) {
	m, err := adiv.CanonicalMFS(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 5 || m[0] != 7 || m[4] != 7 {
		t.Errorf("CanonicalMFS(5) = %v", m)
	}
	if _, err := adiv.CanonicalMFS(1); err == nil {
		t.Errorf("CanonicalMFS(1) succeeded")
	}
}

func TestEvaluationAlphabet(t *testing.T) {
	a := adiv.EvaluationAlphabet()
	if a.Size() != adiv.AlphabetSize {
		t.Errorf("alphabet size %d, want %d", a.Size(), adiv.AlphabetSize)
	}
}

func TestCorpusFacadeSizes(t *testing.T) {
	corpus := sharedCorpus(t)
	sizes := corpus.Sizes()
	if len(sizes) != adiv.MaxAnomalySize-adiv.MinAnomalySize+1 {
		t.Errorf("Sizes() = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("Sizes() not ascending: %v", sizes)
		}
	}
}

func TestWriteMapFacade(t *testing.T) {
	m := sharedMap(t, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	var sb strings.Builder
	if err := adiv.WriteMap(&sb, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Performance map: stide") {
		t.Errorf("WriteMap output:\n%s", sb.String())
	}
	sb.Reset()
	if err := adiv.WriteMapCSV(&sb, m); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "detector,anomaly_size,window,outcome,max_response") {
		t.Errorf("WriteMapCSV output:\n%s", sb.String())
	}
}

// TestExtensionTStideMap charts the t-stide extension: at the classic 0.5%
// cutoff, rare boundary windows raise maximal responses at every cell, so
// its coverage strictly contains both Stide's and the Markov detector's —
// the second instance (after the Markov rare regime) of coverage bought
// with rare-sequence sensitivity.
func TestExtensionTStideMap(t *testing.T) {
	corpus := sharedCorpus(t)
	tstide := sharedMap(t, adiv.DetectorTStide, adiv.TStideFactory, adiv.DefaultEvalOptions())
	stide := sharedMap(t, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	markov := sharedMap(t, adiv.DetectorMarkov, adiv.MarkovFactory, adiv.DefaultEvalOptions())

	cells := (corpus.Config.MaxSize - corpus.Config.MinSize + 1) *
		(corpus.Config.MaxWindow - corpus.Config.MinWindow + 1)
	if got := tstide.CountOutcome(adiv.OutcomeCapable); got != cells {
		t.Errorf("t-stide detects %d of %d cells, want all", got, cells)
	}
	if got := adiv.RelateCoverage(stide, tstide); got != adiv.CoverageSubsetOf {
		t.Errorf("Relate(stide, tstide) = %v, want subset", got)
	}
	if got := adiv.RelateCoverage(markov, tstide); got != adiv.CoverageSubsetOf {
		t.Errorf("Relate(markov, tstide) = %v, want subset", got)
	}

	// The price: false alarms on naturally rare data where plain Stide is
	// silent, and the Stide veto restores silence.
	noisy, err := corpus.NoisyStream(8_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	placement, err := corpus.InjectInto(noisy, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	primary, err := adiv.NewTStide(7, adiv.RareCutoff)
	if err != nil {
		t.Fatal(err)
	}
	veto, err := adiv.NewStide(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := adiv.TrainAll(corpus.Training, primary, veto); err != nil {
		t.Fatal(err)
	}
	r, err := adiv.Suppress(primary, veto, placement, adiv.StrictThreshold, adiv.StrictThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if r.Primary.FalseAlarms == 0 {
		t.Errorf("t-stide raised no false alarms on rare-containing data")
	}
	if r.Suppressed.FalseAlarms != 0 || !r.Suppressed.Hit {
		t.Errorf("suppression result %+v", r.Suppressed)
	}
}

func TestCoverageRelationMatrixFacade(t *testing.T) {
	stide := sharedMap(t, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	markov := sharedMap(t, adiv.DetectorMarkov, adiv.MarkovFactory, adiv.DefaultEvalOptions())
	var sb strings.Builder
	if err := adiv.WriteCoverageRelations(&sb, []*adiv.Map{stide, markov}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "subset") || !strings.Contains(sb.String(), "superset") {
		t.Errorf("relation matrix:\n%s", sb.String())
	}
}

// TestROCOrdersDetectors: over rare-containing trials, the threshold-swept
// trade-off ranks the detectors as the paper's analysis predicts — the
// exact-match Stide pays no false alarms (AUC 1 when its window suffices),
// while L&B never reaches a hit.
func TestROCOrdersDetectors(t *testing.T) {
	corpus := sharedCorpus(t)
	const size, dw = 5, 7
	var placements []adiv.Placement
	for i := 0; i < 3; i++ {
		noisy, err := corpus.NoisyStream(6_000, uint64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		p, err := corpus.InjectInto(noisy, size, dw)
		if err != nil {
			t.Fatal(err)
		}
		placements = append(placements, p)
	}
	thresholds := []float64{0.5, 0.9, 0.98, 1}

	auc := make(map[string]float64)
	for _, name := range []string{adiv.DetectorStide, adiv.DetectorLaneBrodley} {
		det, err := adiv.NewDetector(name, dw)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.Train(corpus.Training); err != nil {
			t.Fatal(err)
		}
		curve, err := adiv.ROC(det, placements, thresholds)
		if err != nil {
			t.Fatal(err)
		}
		a, err := curve.AUC()
		if err != nil {
			t.Fatal(err)
		}
		auc[name] = a
	}
	if auc[adiv.DetectorStide] <= auc[adiv.DetectorLaneBrodley] {
		t.Errorf("AUC ordering violated: stide %v vs lb %v", auc[adiv.DetectorStide], auc[adiv.DetectorLaneBrodley])
	}
	if auc[adiv.DetectorStide] < 0.99 {
		t.Errorf("stide AUC %v, want ≈1 (no false alarms at DW >= AS)", auc[adiv.DetectorStide])
	}
}
