package adiv

import (
	"adiv/internal/capability"
	"adiv/internal/core"
	"adiv/internal/corpusio"
	"adiv/internal/mimicry"
	"adiv/internal/rng"
)

// Figure-1 diagnosis: the decision chain that determines whether a
// deployed anomaly detector can possibly have detected an attack, and if
// not, which stage broke (manifestation, observation, anomalousness,
// detectability, tuning).
type (
	// DiagnosisInputs describes one attack/deployment pair to diagnose.
	DiagnosisInputs = capability.Inputs
	// DiagnosisVerdict is the outcome of walking the chain.
	DiagnosisVerdict = capability.Verdict
	// DiagnosisStage identifies one decision of the chain.
	DiagnosisStage = capability.Stage
)

// Diagnosis stages, in chain order (paper Figure 1, A through E).
const (
	StageManifests  = capability.StageManifests
	StageObserved   = capability.StageObserved
	StageAnomalous  = capability.StageAnomalous
	StageDetectable = capability.StageDetectable
	StageTuned      = capability.StageTuned
)

// Diagnose walks the Figure-1 decision chain for the inputs.
func Diagnose(in DiagnosisInputs) (DiagnosisVerdict, error) {
	return capability.Evaluate(in)
}

// Camouflage generates a mimicry sequence of the given length that is
// invisible to window-matching detection up to the given width: every
// width-window of the result occurs in the indexed training stream
// (Section 2's "attacks manipulated to manifest as normal behavior").
func Camouflage(trainIx *SequenceIndex, width, length int, seed uint64) (Stream, error) {
	return mimicry.Camouflage(trainIx, width, length, rng.New(seed), 0)
}

// MimicryDetectionWidth returns the smallest window width in
// [minWidth, maxWidth] at which the sequence stops being invisible to
// training, or 0 if it never does — how far a camouflaged attack survives
// as the defender widens the window.
func MimicryDetectionWidth(trainIx *SequenceIndex, s Stream, minWidth, maxWidth int) (int, error) {
	return mimicry.DetectionWidth(trainIx, s, minWidth, maxWidth)
}

// SaveCorpus persists an evaluation corpus under dir (streams as
// whitespace-separated decimal text plus a JSON manifest) and returns the
// manifest path.
func SaveCorpus(c *Corpus, dir string) (string, error) {
	return corpusio.Save(c, dir)
}

// LoadCorpus restores a corpus from a directory written by SaveCorpus.
func LoadCorpus(dir string) (*core.Corpus, error) {
	return corpusio.Load(dir)
}
