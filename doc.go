// Package adiv is a library for studying the effects of algorithmic
// diversity on sequence-based anomaly detector performance, reproducing
// Tan & Maxion, "The Effects of Algorithmic Diversity on Anomaly Detector
// Performance" (DSN 2005).
//
// The library provides:
//
//   - Four diverse sequence-based anomaly detectors sharing one interface:
//     Stide (exact window matching), a Markov conditional-probability
//     detector, a neural-network next-element predictor, and the Lane &
//     Brodley adjacency-weighted similarity detector.
//   - The paper's data-synthesis substrate: a Markov-model training stream
//     (98% common cycle, ~2% rare excursions), clean background data,
//     verified minimal foreign sequence (MFS) anomalies of sizes 2-9, and a
//     boundary-safe injection procedure with incident-span accounting.
//   - The evaluation methodology: deploy every detector over the
//     (anomaly size × detector window) grid, classify each cell blind /
//     weak / capable from the maximal response in the incident span, and
//     assemble performance maps (the paper's Figures 3-6).
//   - Detector-combination analysis: coverage union/intersection/gain and
//     the Markov-detects / Stide-suppresses false-alarm pipeline of the
//     paper's Section 7.
//
// # Quick start
//
//	corpus, err := adiv.BuildCorpus(adiv.QuickConfig())
//	if err != nil { ... }
//	m, err := corpus.PerformanceMap("stide", adiv.StideFactory, adiv.DefaultEvalOptions())
//	if err != nil { ... }
//	adiv.WriteMap(os.Stdout, m)
//
// See the examples directory for complete programs and EXPERIMENTS.md for
// the paper-versus-measured record of every reproduced figure.
package adiv
