package adiv_test

import (
	"fmt"

	"adiv"
)

// The Figure-7 calculation: identical sequences score the metric's
// maximum; mismatching only an edge element barely dents it.
func ExampleLBSimilarity() {
	normal := adiv.Stream{0, 1, 2, 3, 4}
	foreign := adiv.Stream{0, 1, 2, 3, 0}
	identical, _ := adiv.LBSimilarity(normal, normal)
	weak, _ := adiv.LBSimilarity(normal, foreign)
	fmt.Println(identical, weak, adiv.LBMaxSimilarity(5))
	// Output: 15 10 15
}

// The canonical minimal foreign sequences the evaluation injects.
func ExampleCanonicalMFS() {
	a := adiv.EvaluationAlphabet()
	for _, size := range []int{2, 3, 6} {
		m, _ := adiv.CanonicalMFS(size)
		fmt.Println(a.Format(m))
	}
	// Output:
	// 7 7
	// 7 0 7
	// 7 0 0 0 0 7
}

// Stide in two lines: train on normal data, score a stream; a window that
// never occurred in training scores 1.
func ExampleNewStide() {
	train := adiv.Stream{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3}
	det, _ := adiv.NewStide(2)
	_ = det.Train(train)
	responses, _ := det.Score(adiv.Stream{1, 2, 3, 2})
	fmt.Println(responses)
	// Output: [0 0 1]
}

// The Markov detector estimates conditional probabilities; a transition
// seen every time scores 0, a never-seen one scores 1.
func ExampleNewMarkov() {
	train := adiv.Stream{1, 2, 3, 1, 2, 3, 1, 2, 3}
	det, _ := adiv.NewMarkov(1)
	_ = det.Train(train)
	responses, _ := det.Score(adiv.Stream{1, 2, 1})
	fmt.Printf("%.2f\n", responses)
	// Output: [0.00 1.00]
}

// Streaming deployment produces exactly the batch responses, one per
// completed window.
func ExampleNewStreamScorer() {
	train := adiv.Stream{1, 2, 3, 1, 2, 3, 1, 2, 3}
	det, _ := adiv.NewStide(2)
	_ = det.Train(train)
	scorer, _ := adiv.NewStreamScorer(det)
	for _, sym := range []adiv.Symbol{1, 2, 3, 3} {
		r, ready, _ := scorer.Push(sym)
		if ready {
			fmt.Print(r, " ")
		}
	}
	// Output: 0 0 1
}
