package adiv_test

import (
	"sync"
	"testing"

	"adiv"
)

// The figure tests and benches share one reduced-configuration corpus; its
// shapes are identical to the full one-million-element configuration (see
// EXPERIMENTS.md for the full-scale record).
var (
	corpusOnce sync.Once
	corpusVal  *adiv.Corpus
	corpusErr  error
)

func sharedCorpus(tb testing.TB) *adiv.Corpus {
	tb.Helper()
	corpusOnce.Do(func() {
		corpusVal, corpusErr = adiv.BuildCorpus(adiv.QuickConfig())
	})
	if corpusErr != nil {
		tb.Fatalf("BuildCorpus: %v", corpusErr)
	}
	return corpusVal
}

// mapCache shares performance maps across figure tests and the combination
// test so each detector family trains only once per test binary.
var (
	mapMu    sync.Mutex
	mapCache = make(map[string]*adiv.Map)
)

func sharedMap(tb testing.TB, name string, factory adiv.Factory, opts adiv.EvalOptions) *adiv.Map {
	tb.Helper()
	key := name
	mapMu.Lock()
	defer mapMu.Unlock()
	if m, ok := mapCache[key]; ok {
		return m
	}
	corpus := sharedCorpus(tb)
	m, err := corpus.PerformanceMap(name, factory, opts)
	if err != nil {
		tb.Fatalf("PerformanceMap(%s): %v", name, err)
	}
	mapCache[key] = m
	return m
}
