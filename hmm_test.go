package adiv_test

import (
	"testing"

	"adiv"
)

// TestExtensionHMMRespondsToMFS charts the HMM extension (Warrender et
// al.'s fourth data model) against the evaluation anomalies. The HMM has
// no detector window: it tracks the process with a recurrent hidden state
// and scores each symbol's one-step predictive probability. The injected
// minimal foreign sequences surface as strong responses at the excursion
// entry — like the Markov detector's rare-transition responses — so the
// HMM is never blind to any anomaly size, and under the rare-sensitive
// regime it covers every size outright.
func TestExtensionHMMRespondsToMFS(t *testing.T) {
	corpus := sharedCorpus(t)
	det, err := adiv.NewHMM(adiv.DefaultHMMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(corpus.Training); err != nil {
		t.Fatal(err)
	}
	for _, size := range corpus.Sizes() {
		a, err := adiv.AssessDetector(det, corpus.Placements[size], adiv.RareSensitiveEvalOptions())
		if err != nil {
			t.Fatal(err)
		}
		if a.Outcome == adiv.OutcomeBlind || a.Outcome == adiv.OutcomeUndefined {
			t.Errorf("size %d: outcome %v (max response %v)", size, a.Outcome, a.MaxResponse)
		}
		if a.MaxResponse < 0.9 {
			t.Errorf("size %d: max response %v, want strong", size, a.MaxResponse)
		}
	}

	// And it stays quiet on the clean background: every response on pure
	// cycle data is far from maximal once the belief has localized.
	responses, err := det.Score(corpus.Background[:600])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range responses[12:] {
		if r > 0.5 {
			t.Errorf("background response[%d] = %v, want low", i+12, r)
		}
	}
}
