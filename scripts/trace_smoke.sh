#!/usr/bin/env bash
# Smoke-test execution tracing end to end: run a quick perfmap with -trace,
# check the exported file is a Chrome trace_event document carrying the
# adiv.trace/v1 schema and at least one grid-cell span, then feed it to
# diagnose -trace and require the critical-path analysis to come back. CI
# runs this so the trace pipeline (export -> viewer format -> analyzer)
# cannot silently rot between releases.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trace="$workdir/trace.json"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "building perfmap and diagnose..."
go build -o "$workdir/perfmap" ./cmd/perfmap
go build -o "$workdir/diagnose" ./cmd/diagnose

echo "running quick perfmap with -trace..."
"$workdir/perfmap" -quick -j 2 -trace "$trace" \
    >"$workdir/stdout.txt" 2>"$workdir/stderr.ndjson"

if [[ ! -s "$trace" ]]; then
    echo "FAIL: -trace produced no file at $trace" >&2
    cat "$workdir/stderr.ndjson" >&2
    exit 1
fi
if ! grep -q '"schema": "adiv.trace/v1"' "$trace"; then
    echo "FAIL: trace file missing adiv.trace/v1 schema tag" >&2
    head -n 20 "$trace" >&2
    exit 1
fi
if ! grep -q '"traceEvents"' "$trace"; then
    echo "FAIL: trace file is not a Chrome trace_event document" >&2
    exit 1
fi
if ! grep -q '"name": "cell/' "$trace"; then
    echo "FAIL: no grid-cell spans on the exported timeline" >&2
    exit 1
fi
if ! grep -q '"traceOut"' "$workdir/stderr.ndjson"; then
    echo "FAIL: run.done never announced traceOut" >&2
    cat "$workdir/stderr.ndjson" >&2
    exit 1
fi
cells=$(grep -c '"name": "cell/' "$trace")
echo "exported Chrome trace with $cells cell events"

echo "analyzing with diagnose -trace..."
report=$("$workdir/diagnose" -trace "$trace")
for want in "cell spans:" "critical path" "worker occupancy:"; do
    if ! grep -q "$want" <<<"$report"; then
        echo "FAIL: diagnose -trace report missing \"$want\":" >&2
        echo "$report" >&2
        exit 1
    fi
done
if grep -q "cell spans: 0" <<<"$report"; then
    echo "FAIL: analyzer counted zero cell spans" >&2
    echo "$report" >&2
    exit 1
fi
echo "trace smoke OK"
