#!/usr/bin/env bash
# Smoke-test checkpoint/resume end to end: run a quick perfmap grid to
# completion as the reference, start the same run with -checkpoint and
# SIGKILL it once the journal holds at least one cell (the neural-network
# figure gives the kill a multi-second window), then resume from the
# journal and require the resumed output to match the reference byte for
# byte. CI runs this so a crash mid-journal-write or a replay that drifts
# from live evaluation cannot silently rot.
#
# The training-DB cache summary is filtered from the comparison: a resumed
# run trains only the rows the crash left unfinished, so its cache counters
# legitimately differ while every rendered map byte must not.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

args=(-quick -figure 6 -csv -j 2)
journal_dir="$workdir/ckpt"
journal="$journal_dir/grid.journal"

echo "building perfmap..."
go build -o "$workdir/perfmap" ./cmd/perfmap

echo "reference run (no checkpoint)..."
"$workdir/perfmap" "${args[@]}" >"$workdir/ref.txt" 2>/dev/null

echo "checkpointed run, to be killed mid-grid..."
"$workdir/perfmap" "${args[@]}" -checkpoint "$journal_dir" \
    >"$workdir/killed.txt" 2>"$workdir/killed.stderr" &
pid=$!

# Kill as soon as the journal holds the header plus at least one cell
# record. If the run finishes first the kill is a no-op and the resume
# below degenerates to a full replay — still a valid equivalence check,
# never a flake.
for _ in $(seq 1 200); do
    size=$(stat -c %s "$journal" 2>/dev/null || echo 0)
    if [[ "$size" -gt 400 ]]; then
        break
    fi
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
done
if kill -0 "$pid" 2>/dev/null; then
    kill -9 "$pid"
    echo "killed mid-run with journal at ${size} bytes"
else
    echo "run finished before the kill landed (journal ${size} bytes); resume degenerates to full replay"
fi
wait "$pid" 2>/dev/null || true
pid=""

if [[ ! -s "$journal" ]]; then
    echo "FAIL: no journal was written at $journal" >&2
    exit 1
fi

echo "resuming from the journal..."
"$workdir/perfmap" "${args[@]}" -checkpoint "$journal_dir" -resume \
    >"$workdir/resumed.txt" 2>"$workdir/resumed.stderr"

if ! grep -q '"event":"ckpt.open"' "$workdir/resumed.stderr"; then
    echo "FAIL: resumed run never announced ckpt.open" >&2
    cat "$workdir/resumed.stderr" >&2
    exit 1
fi
replayed=$(sed -n 's/.*"event":"ckpt.open".*"resumed":\([0-9]*\).*/\1/p' "$workdir/resumed.stderr" | head -n1)
if [[ -z "$replayed" || "$replayed" -lt 1 ]]; then
    echo "FAIL: resumed run replayed ${replayed:-0} cells, want at least 1" >&2
    cat "$workdir/resumed.stderr" >&2
    exit 1
fi
echo "resumed run replayed $replayed journaled cells"

if ! diff <(grep -v 'training-DB cache' "$workdir/ref.txt") \
          <(grep -v 'training-DB cache' "$workdir/resumed.txt"); then
    echo "FAIL: resumed output differs from the uninterrupted reference" >&2
    exit 1
fi
echo "resumed output is byte-identical to the uninterrupted run"

# A third invocation without -resume must refuse the existing journal.
if "$workdir/perfmap" "${args[@]}" -checkpoint "$journal_dir" \
    >/dev/null 2>"$workdir/refused.stderr"; then
    echo "FAIL: rerun over an existing journal succeeded without -resume" >&2
    exit 1
fi
if ! grep -q -- '-resume' "$workdir/refused.stderr"; then
    echo "FAIL: refusal does not mention -resume:" >&2
    cat "$workdir/refused.stderr" >&2
    exit 1
fi
echo "journal correctly refused without -resume"
echo "resume smoke OK"
