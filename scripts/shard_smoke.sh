#!/usr/bin/env bash
# Smoke-test distributed grid runs end to end: run a quick perfmap serially
# as the reference, run the same configuration as `-fanout 3` (three -shard
# worker processes journaling into shard-i-of-3 directories, merged into one
# grid.journal, figures rendered from the merged journal), and require the
# fanout stdout to match the serial run byte for byte. Then corrupt a
# journal header and require the data-loss guardrails: refusal without
# -resume with the file left intact, preservation as grid.journal.corrupt
# with -resume.
#
# The training-DB cache summary is filtered from the comparison: the final
# rendering pass replays every cell from the merged journal and trains
# nothing, so its cache counters legitimately differ while every rendered
# map byte must not.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

args=(-quick -csv -j 1)
journal_dir="$workdir/ckpt"
journal="$journal_dir/grid.journal"

echo "building perfmap..."
go build -o "$workdir/perfmap" ./cmd/perfmap

echo "serial reference run..."
"$workdir/perfmap" "${args[@]}" >"$workdir/ref.txt" 2>/dev/null

echo "fanout run: 3 shard workers + merge + render..."
"$workdir/perfmap" -quick -csv -j 2 -fanout 3 -checkpoint "$journal_dir" \
    >"$workdir/fanout.txt" 2>"$workdir/fanout.stderr"

for i in 1 2 3; do
    shard="$journal_dir/shard-$i-of-3/grid.journal"
    if [[ ! -s "$shard" ]]; then
        echo "FAIL: shard journal $shard missing or empty" >&2
        cat "$workdir/fanout.stderr" >&2
        exit 1
    fi
done
if [[ ! -s "$journal" ]]; then
    echo "FAIL: merged journal $journal missing" >&2
    cat "$workdir/fanout.stderr" >&2
    exit 1
fi
if ! grep -q 'merged 3 shard journals' "$workdir/fanout.stderr"; then
    echo "FAIL: fanout never announced the merge:" >&2
    cat "$workdir/fanout.stderr" >&2
    exit 1
fi

if ! diff <(grep -v 'training-DB cache' "$workdir/ref.txt") \
          <(grep -v 'training-DB cache' "$workdir/fanout.txt"); then
    echo "FAIL: fanout output differs from the serial reference" >&2
    exit 1
fi
echo "fanout output is byte-identical to the serial run"

# Corrupt-header guardrails: clobber the merged journal's header and rerun.
corrupt_dir="$workdir/corrupt"
mkdir -p "$corrupt_dir"
printf 'this is not a journal header' >"$corrupt_dir/grid.journal"
before=$(cksum "$corrupt_dir/grid.journal")

if "$workdir/perfmap" "${args[@]}" -checkpoint "$corrupt_dir" \
    >/dev/null 2>"$workdir/corrupt.stderr"; then
    echo "FAIL: run over an unreadable journal succeeded without -resume" >&2
    exit 1
fi
if ! grep -q -- '-resume' "$workdir/corrupt.stderr"; then
    echo "FAIL: corrupt-journal refusal does not mention -resume:" >&2
    cat "$workdir/corrupt.stderr" >&2
    exit 1
fi
after=$(cksum "$corrupt_dir/grid.journal")
if [[ "$before" != "$after" ]]; then
    echo "FAIL: refused run still modified the unreadable journal" >&2
    exit 1
fi
echo "unreadable journal refused without -resume, file left intact"

"$workdir/perfmap" "${args[@]}" -checkpoint "$corrupt_dir" -resume \
    >/dev/null 2>"$workdir/preserve.stderr"
if [[ ! -s "$corrupt_dir/grid.journal.corrupt" ]]; then
    echo "FAIL: unreadable journal was not preserved as grid.journal.corrupt" >&2
    ls -la "$corrupt_dir" >&2
    exit 1
fi
if ! grep -q '"event":"ckpt.corrupt"' "$workdir/preserve.stderr"; then
    echo "FAIL: preservation never announced ckpt.corrupt:" >&2
    cat "$workdir/preserve.stderr" >&2
    exit 1
fi
echo "unreadable journal preserved as grid.journal.corrupt under -resume"
echo "shard smoke OK"
