#!/usr/bin/env bash
# Smoke-test the alert-journal stack end to end: launch a quick ensemble run
# with -alerts and -status 127.0.0.1:0, recover the bound address from the
# run.start announcement on stderr, poll /alertz mid-run until journaled
# records appear, and after the run finishes require the NDJSON journal on
# disk to parse through `diagnose -alerts` with per-family rows. CI runs
# this so the streaming alert path cannot silently rot between releases.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
stderr_log="$workdir/stderr.ndjson"
alerts_file="$workdir/alerts.ndjson"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "building ensemble and diagnose..."
go build -o "$workdir/ensemble" ./cmd/ensemble
go build -o "$workdir/diagnose" ./cmd/diagnose

# A long rare-containing stream keeps the streaming replay phase (the first
# phase of the run) alive for a few seconds, so the mid-run /alertz poll has
# a live journal to tail.
"$workdir/ensemble" -quick -noisy 150000 -alerts "$alerts_file" -status 127.0.0.1:0 \
    >"$workdir/stdout.txt" 2>"$stderr_log" &
pid=$!

# The run.start event carries "statusAddr":"127.0.0.1:PORT".
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*"statusAddr":"\([^"]*\)".*/\1/p' "$stderr_log" | head -n1)
    [[ -n "$addr" ]] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: ensemble exited before announcing a status address" >&2
        cat "$stderr_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "FAIL: no statusAddr in run.start within 10s" >&2
    cat "$stderr_log" >&2
    exit 1
fi
echo "status server at $addr"

# Poll /alertz until the live journal tail carries records (the streaming
# replay raises its first alarms within the first stretch of the stream).
tail_body=""
for _ in $(seq 1 200); do
    tail_body=$(curl -sS "http://$addr/alertz" 2>/dev/null || true)
    if grep -q '"schema":"adiv.alerts/v1"' <<<"$tail_body"; then
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if ! grep -q '"schema":"adiv.alerts/v1"' <<<"$tail_body"; then
    echo "FAIL: /alertz never served an adiv.alerts/v1 record mid-run" >&2
    echo "$tail_body" >&2
    exit 1
fi
echo "polled /alertz mid-run ($(grep -c '"schema"' <<<"$tail_body") records)"
if ! curl -sS -o /dev/null -w '%{http_code}' "http://$addr/healthz" | grep -q '^200$'; then
    echo "FAIL: /healthz not 200 mid-run" >&2
    exit 1
fi
echo "scraped /healthz mid-run"

if ! wait "$pid"; then
    echo "FAIL: ensemble run failed" >&2
    cat "$stderr_log" >&2
    exit 1
fi
pid=""

# The journal on disk must parse: every line an adiv.alerts/v1 record, and
# the diagnose -alerts analysis must render the markov family's dispositions.
if [[ ! -s "$alerts_file" ]]; then
    echo "FAIL: -alerts journal missing or empty" >&2
    exit 1
fi
if grep -v '"schema":"adiv.alerts/v1"' "$alerts_file" | grep -q .; then
    echo "FAIL: journal contains non-v1 lines:" >&2
    grep -v '"schema":"adiv.alerts/v1"' "$alerts_file" >&2
    exit 1
fi
report=$("$workdir/diagnose" -alerts "$alerts_file")
echo "$report"
if ! grep -q '^Alert journal: [1-9]' <<<"$report"; then
    echo "FAIL: diagnose -alerts reports no records" >&2
    exit 1
fi
if ! grep -q '^markov ' <<<"$report"; then
    echo "FAIL: diagnose -alerts missing the markov family row" >&2
    exit 1
fi
if ! grep -q '"event":"alerts.replay"' "$stderr_log"; then
    echo "FAIL: alerts.replay never announced" >&2
    exit 1
fi
echo "alerts smoke OK"
