#!/usr/bin/env bash
# Smoke-test the streaming detection daemon end to end: start serve with
# both transports, an alert journal, and the status server on ephemeral
# ports; drive 3 tenants x 10k events through serveload with a canonical
# rare sequence injected at a known position; assert the live /runz serving
# counters, the ingest-latency p99 on /metrics, and one journaled alarm per
# tenant at the injected position; then SIGTERM the daemon and require a
# clean drain (accepted == scored, exit 0). CI runs this so the serving
# path cannot silently rot between releases.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
stderr_log="$workdir/serve.stderr.ndjson"
stdout_log="$workdir/serve.stdout.txt"
alerts_file="$workdir/alerts.ndjson"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "building serve and serveload..."
go build -o "$workdir/serve" ./cmd/serve
go build -o "$workdir/serveload" ./cmd/serveload

# A modest training stream keeps daemon startup fast; stide window 6 at
# threshold 1 alarms only on windows containing foreign content, so the
# injected minimal-foreign sequences are the expected alarms.
"$workdir/serve" -train-len 20000 -detector stide -window 6 -threshold 1 \
    -shards 4 -http 127.0.0.1:0 -tcp 127.0.0.1:0 -status 127.0.0.1:0 \
    -alerts "$alerts_file" \
    >"$stdout_log" 2>"$stderr_log" &
pid=$!

# run.start announces the bound addresses.
addr_of() {
    sed -n 's/.*"'"$1"'":"\([^"]*\)".*/\1/p' "$stderr_log" | head -n1
}
tcp_addr=""
for _ in $(seq 1 100); do
    tcp_addr=$(addr_of tcpAddr)
    [[ -n "$tcp_addr" ]] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: serve exited before announcing addresses" >&2
        cat "$stderr_log" >&2
        exit 1
    fi
    sleep 0.1
done
http_addr=$(addr_of httpAddr)
status_addr=$(addr_of statusAddr)
if [[ -z "$tcp_addr" || -z "$http_addr" || -z "$status_addr" ]]; then
    echo "FAIL: missing addresses in run.start (http='$http_addr' tcp='$tcp_addr' status='$status_addr')" >&2
    cat "$stderr_log" >&2
    exit 1
fi
echo "serve up: http $http_addr, tcp $tcp_addr, status $status_addr"

# One NDJSON request through the HTTP transport proves both transports share
# the core.
http_resp=$(curl -sS -X POST --data-binary '{"tenant":"curl-probe","symbols":[1,2,3,4,5,6],"close":true}' "http://$http_addr/v1/push")
if ! grep -q '"accepted":6' <<<"$http_resp"; then
    echo "FAIL: HTTP push did not accept 6 events: $http_resp" >&2
    exit 1
fi
echo "HTTP transport OK: $http_resp"

# Drive the load paced (~2s) so the mid-run /runz poll can observe all 3
# tenants live, in the background.
"$workdir/serveload" -tcp "$tcp_addr" -tenants 3 -events 10000 -batch 256 \
    -rate 15000 -inject-size 6 -window 6 -verify-journal "$alerts_file" \
    >"$workdir/load.txt" 2>"$workdir/load.stderr" &
load_pid=$!

saw_tenants=""
for _ in $(seq 1 50); do
    if curl -sS "http://$status_addr/runz" 2>/dev/null | grep -q '"tenants": *3'; then
        saw_tenants=yes
        break
    fi
    kill -0 "$load_pid" 2>/dev/null || break
    sleep 0.1
done
if [[ -z "$saw_tenants" ]]; then
    echo "FAIL: /runz never reported 3 live tenants mid-load" >&2
    curl -sS "http://$status_addr/runz" >&2 || true
    exit 1
fi
echo "polled /runz mid-load: 3 tenants live"

if ! wait "$load_pid"; then
    echo "FAIL: serveload failed (load output follows)" >&2
    cat "$workdir/load.txt" "$workdir/load.stderr" >&2
    exit 1
fi
cat "$workdir/load.txt"
if ! grep -q 'verify: all 3 tenants alarmed' "$workdir/load.txt"; then
    echo "FAIL: journal verification did not cover all tenants" >&2
    exit 1
fi

# The final 500ms stats tick publishes the full load: 3x10000 events plus
# 3x6 injected symbols plus the 6-event curl probe.
sleep 1
runz=$(curl -sS "http://$status_addr/runz")
accepted=$(sed -n 's/.*"accepted": *\([0-9]*\).*/\1/p' <<<"$runz" | head -n1)
if [[ -z "$accepted" || "$accepted" -lt 30018 ]]; then
    echo "FAIL: /runz accepted=$accepted, want >= 30018" >&2
    echo "$runz" >&2
    exit 1
fi
echo "/runz accepted=$accepted"

# The ingest-latency sketch must expose a finite p99 summary on /metrics.
metrics=$(curl -sS "http://$status_addr/metrics")
if ! grep -q 'adiv_serve_ingest_latency{quantile="0.99"}' <<<"$metrics"; then
    echo "FAIL: no serve/ingest_latency p99 on /metrics" >&2
    grep adiv_serve <<<"$metrics" >&2 || true
    exit 1
fi
echo "p99 on /metrics: $(grep 'adiv_serve_ingest_latency{quantile="0.99"}' <<<"$metrics")"

# Graceful drain: SIGTERM must flush every accepted batch and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "FAIL: serve exited nonzero after SIGTERM" >&2
    cat "$stdout_log" "$stderr_log" >&2
    exit 1
fi
pid=""
if ! grep -q '^clean drain: ' "$stdout_log"; then
    echo "FAIL: no clean-drain line in serve output:" >&2
    cat "$stdout_log" >&2
    exit 1
fi
grep '^clean drain: ' "$stdout_log"
if ! grep -q '"event":"serve.drained"' "$stderr_log"; then
    echo "FAIL: serve.drained never announced" >&2
    exit 1
fi
# Journal sanity: only adiv.alerts/v1 lines, tenant-stamped.
if grep -v '"schema":"adiv.alerts/v1"' "$alerts_file" | grep -q .; then
    echo "FAIL: journal contains non-v1 lines" >&2
    exit 1
fi
if ! grep -q '"tenant":"load-0"' "$alerts_file"; then
    echo "FAIL: journal records are not tenant-stamped" >&2
    exit 1
fi
echo "serve smoke OK"
