#!/bin/sh
# bench_snapshot.sh — record the repo's benchmark suite to a dated JSON
# file (BENCH_<yyyy-mm-dd>.json) so performance can be compared across
# commits. Runs every benchmark once with -benchmem; pass a -benchtime
# value as $1 for steadier numbers (e.g. ./scripts/bench_snapshot.sh 3x).
#
# Output schema:
#   { "schema": "adiv.bench/v1", "date": ..., "go": ..., "commit": ...,
#     "benchmarks": [ {"name":..., "iterations":..., "ns_per_op":...,
#                      "bytes_per_op":..., "allocs_per_op":...}, ... ] }
set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-1x}"
date_tag="$(date -u +%Y-%m-%d)"
out="BENCH_${date_tag}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (-benchtime $benchtime)..." >&2
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" ./... >"$raw"

go_version="$(go version | awk '{print $3}')"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

awk -v date="$date_tag" -v gover="$go_version" -v commit="$commit" '
BEGIN {
    printf "{\n  \"schema\": \"adiv.bench/v1\",\n"
    printf "  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", date, gover, commit
    printf "  \"benchmarks\": [\n"
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n > 0) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
    n++
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

count="$(grep -c '"name"' "$out" || true)"
echo "wrote $out ($count benchmarks)" >&2
