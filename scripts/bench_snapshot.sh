#!/bin/sh
# bench_snapshot.sh — record the repo's benchmark suite to a dated JSON
# file (BENCH_<yyyy-mm-dd>.json) so performance can be compared across
# commits.
#
# Usage:
#   ./scripts/bench_snapshot.sh [benchtime]         record a snapshot
#   ./scripts/bench_snapshot.sh -check [benchtime]  compare only (no write)
#
# Benchmarks run with -benchmem and a time-based default -benchtime of
# 300ms: single-shot numbers (the old 1x default) jitter enough that
# compare-mode deltas were noise, and a handful of iterations cannot
# amortize run-to-run allocation jitter (Go's tiny allocator packs small
# allocations differently depending on process history, so allocs/op over
# 3 iterations can differ by 1-2 between a full-suite run and a filtered
# one — over hundreds of iterations the difference floors away). Explicit
# iteration counts are still accepted with a minimum of 3x; time-based
# values pass through. The snapshot header records the CPU model and
# GOMAXPROCS alongside date/go/commit, so cross-machine comparisons are
# visibly cross-machine.
#
# Snapshot mode diffs the most recent existing BENCH_*.json against the
# fresh run before writing, printing per-benchmark ns/op and allocs/op
# deltas. Check mode (-check, backing `make bench-check`) performs the same
# comparison and exits nonzero if any benchmark present in both runs
# regressed more than 10% in ns/op or increased its allocs/op at all;
# nothing is written. BENCH_FILTER limits the benchmarks run (a go test
# -bench regexp; default all) — benchmarks missing from the run are
# reported but never fail the check. Compare like with like: allocs/op on
# allocation-heavy benchmarks couples to GC cadence (each cycle resets the
# runtime's tiny-allocation block), which depends on what else ran in the
# process — a filtered run can report a stable 1-2 allocs/op more than the
# same benchmark inside the full suite. Use BENCH_FILTER for quick
# iteration; gate against a full-suite snapshot with a full-suite check.
#
# Output schema:
#   { "schema": "adiv.bench/v1", "date": ..., "go": ..., "commit": ...,
#     "cpu": ..., "gomaxprocs": ...,
#     "benchmarks": [ {"name":..., "iterations":..., "ns_per_op":...,
#                      "bytes_per_op":..., "allocs_per_op":...}, ... ] }
set -eu

cd "$(dirname "$0")/.."

mode="snapshot"
if [ "${1:-}" = "-check" ]; then
    mode="check"
    shift
fi

benchtime="${1:-300ms}"
# Enforce the 3x minimum on explicit iteration counts.
case "$benchtime" in
*x)
    iters="${benchtime%x}"
    case "$iters" in
    '' | *[!0-9]*) ;; # not a plain count; leave it alone
    *)
        if [ "$iters" -lt 3 ]; then
            echo "bumping -benchtime ${benchtime} to the 3x minimum" >&2
            benchtime="3x"
        fi
        ;;
    esac
    ;;
esac

filter="${BENCH_FILTER:-.}"
date_tag="$(date -u +%Y-%m-%d)"
out="BENCH_${date_tag}.json"
raw="$(mktemp)"
fresh="$(mktemp)"
trap 'rm -f "$raw" "$fresh"' EXIT

# Latest snapshot on disk (lexicographic order == date order for the
# BENCH_yyyy-mm-dd naming). Snapshot mode excludes today's file (a re-run
# should diff against the previous snapshot, not overwrite-and-match);
# check mode compares against the newest snapshot, today's included.
prev=""
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    [ "$mode" = "snapshot" ] && [ "$f" = "$out" ] && continue
    prev="$f"
done

echo "running benchmarks (-benchtime $benchtime, -bench '$filter')..." >&2
go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" ./... >"$raw"

go_version="$(go version | awk '{print $3}')"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
# The cpu line go test prints for the benchmarked package; fall back to
# /proc/cpuinfo for environments where it is absent.
cpu="$(awk -F': ' '/^cpu: /{print $2; exit}' "$raw")"
if [ -z "$cpu" ]; then
    cpu="$(awk -F': ' '/^model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
fi
gomaxprocs="$(go env GOMAXPROCS 2>/dev/null || true)"
if [ -z "$gomaxprocs" ] || [ "$gomaxprocs" = "0" ]; then
    gomaxprocs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
fi

awk -v date="$date_tag" -v gover="$go_version" -v commit="$commit" \
    -v cpu="$cpu" -v gomaxprocs="$gomaxprocs" '
BEGIN {
    printf "{\n  \"schema\": \"adiv.bench/v1\",\n"
    printf "  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", date, gover, commit
    printf "  \"cpu\": \"%s\",\n  \"gomaxprocs\": %d,\n", cpu, gomaxprocs
    printf "  \"benchmarks\": [\n"
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n > 0) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
    n++
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$fresh"

if [ "$mode" = "snapshot" ]; then
    cp "$fresh" "$out"
    count="$(grep -c '"name"' "$out" || true)"
    echo "wrote $out ($count benchmarks)" >&2
fi

if [ -z "$prev" ]; then
    if [ "$mode" = "check" ]; then
        echo "bench-check: no previous BENCH_*.json found; nothing to compare" >&2
        exit 0
    fi
    echo "no previous BENCH_*.json found; skipping comparison" >&2
    exit 0
fi

echo "" >&2
echo "comparison against $prev (ns/op, allocs/op):" >&2
# Both files carry one benchmark object per line; join on name. In check
# mode a >10% ns/op regression or any allocs/op increase is a failure.
awk -v check="$([ "$mode" = "check" ] && echo 1 || echo 0)" '
function fld(line, key,   rest) {
    if (index(line, "\"" key "\":") == 0) return ""
    rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
    gsub(/^[ ]*/, "", rest)
    if (substr(rest, 1, 1) == "\"") {
        # Quoted string: cut at the closing quote (names may contain commas).
        rest = substr(rest, 2)
        sub(/".*$/, "", rest)
        return rest
    }
    sub(/[,}].*$/, "", rest)
    return rest
}
/"name"/ {
    name = fld($0, "name")
    if (name == "") next
    if (NR == FNR) {
        old_ns[name] = fld($0, "ns_per_op")
        old_allocs[name] = fld($0, "allocs_per_op")
        next
    }
    ns = fld($0, "ns_per_op"); allocs = fld($0, "allocs_per_op")
    if (!(name in old_ns)) { printf "  %-55s NEW  %s ns/op  %s allocs/op\n", name, ns, allocs; next }
    ons = old_ns[name] + 0; oal = old_allocs[name] + 0
    dns = "n/a"; if (ons > 0) dns = sprintf("%+.1f%%", (ns - ons) * 100.0 / ons)
    dal = "n/a"; if (oal > 0) dal = sprintf("%+.1f%%", (allocs - oal) * 100.0 / oal)
    else if (allocs + 0 == oal) dal = "+0.0%"
    printf "  %-55s %12s -> %-12s (%s)   allocs %6s -> %-6s (%s)\n", \
        name, ons, ns, dns, old_allocs[name], allocs, dal
    seen[name] = 1
    if (check) {
        if (ons > 0 && (ns - ons) * 100.0 / ons > 10.0) {
            printf "  FAIL %s: ns/op regressed %s (limit +10%%)\n", name, dns
            failed = 1
        }
        if (allocs + 0 > oal) {
            printf "  FAIL %s: allocs/op increased %s -> %s\n", name, old_allocs[name], allocs
            failed = 1
        }
    }
}
END {
    for (name in old_ns) if (!(name in seen)) printf "  %-55s GONE\n", name
    if (check && failed) exit 1
}
' "$prev" "$fresh" >&2 || {
    echo "bench-check: performance regression detected" >&2
    exit 1
}
if [ "$mode" = "check" ]; then
    echo "bench-check: no regressions against $prev" >&2
fi
