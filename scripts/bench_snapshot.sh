#!/bin/sh
# bench_snapshot.sh — record the repo's benchmark suite to a dated JSON
# file (BENCH_<yyyy-mm-dd>.json) so performance can be compared across
# commits. Runs every benchmark once with -benchmem; pass a -benchtime
# value as $1 for steadier numbers (e.g. ./scripts/bench_snapshot.sh 3x).
#
# Before writing the new snapshot, the most recent existing BENCH_*.json is
# diffed against the fresh run: per-benchmark ns/op and allocs/op deltas are
# printed for every benchmark present in both, so a regression shows up in
# the run that introduces it, not in a later archaeology session.
#
# Output schema:
#   { "schema": "adiv.bench/v1", "date": ..., "go": ..., "commit": ...,
#     "benchmarks": [ {"name":..., "iterations":..., "ns_per_op":...,
#                      "bytes_per_op":..., "allocs_per_op":...}, ... ] }
set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-1x}"
date_tag="$(date -u +%Y-%m-%d)"
out="BENCH_${date_tag}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Latest snapshot on disk (lexicographic order == date order for the
# BENCH_yyyy-mm-dd naming), excluding today's if re-running.
prev=""
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    [ "$f" = "$out" ] && continue
    prev="$f"
done

echo "running benchmarks (-benchtime $benchtime)..." >&2
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" ./... >"$raw"

go_version="$(go version | awk '{print $3}')"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

awk -v date="$date_tag" -v gover="$go_version" -v commit="$commit" '
BEGIN {
    printf "{\n  \"schema\": \"adiv.bench/v1\",\n"
    printf "  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", date, gover, commit
    printf "  \"benchmarks\": [\n"
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n > 0) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
    n++
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

count="$(grep -c '"name"' "$out" || true)"
echo "wrote $out ($count benchmarks)" >&2

if [ -n "$prev" ]; then
    echo "" >&2
    echo "comparison against $prev (ns/op, allocs/op):" >&2
    # Both files carry one benchmark object per line; join on name.
    awk '
    function fld(line, key,   rest) {
        if (index(line, "\"" key "\":") == 0) return ""
        rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
        gsub(/^[ ]*/, "", rest)
        sub(/[,}].*$/, "", rest)
        gsub(/"/, "", rest)
        return rest
    }
    /"name"/ {
        name = fld($0, "name")
        if (name == "") next
        if (NR == FNR) {
            old_ns[name] = fld($0, "ns_per_op")
            old_allocs[name] = fld($0, "allocs_per_op")
            next
        }
        ns = fld($0, "ns_per_op"); allocs = fld($0, "allocs_per_op")
        if (!(name in old_ns)) { printf "  %-55s NEW  %s ns/op  %s allocs/op\n", name, ns, allocs; next }
        ons = old_ns[name] + 0; oal = old_allocs[name] + 0
        dns = "n/a"; if (ons > 0) dns = sprintf("%+.1f%%", (ns - ons) * 100.0 / ons)
        dal = "n/a"; if (oal > 0) dal = sprintf("%+.1f%%", (allocs - oal) * 100.0 / oal)
        else if (allocs + 0 == oal) dal = "+0.0%"
        printf "  %-55s %12s -> %-12s (%s)   allocs %6s -> %-6s (%s)\n", \
            name, ons, ns, dns, old_allocs[name], allocs, dal
        seen[name] = 1
    }
    END {
        for (name in old_ns) if (!(name in seen)) printf "  %-55s GONE\n", name
    }
    ' "$prev" "$out" >&2
else
    echo "no previous BENCH_*.json found; skipping comparison" >&2
fi
