#!/usr/bin/env bash
# Smoke-test the -status introspection server end to end: launch a quick
# perfmap run with -status 127.0.0.1:0, recover the bound address from the
# run.start announcement on stderr, scrape /metrics and /runz mid-run, and
# fail on any non-200 response or empty body. CI runs this so the live
# endpoints cannot silently rot between releases.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
stderr_log="$workdir/stderr.ndjson"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "building perfmap..."
go build -o "$workdir/perfmap" ./cmd/perfmap

"$workdir/perfmap" -quick -status 127.0.0.1:0 >"$workdir/stdout.txt" 2>"$stderr_log" &
pid=$!

# The run.start event carries "statusAddr":"127.0.0.1:PORT".
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*"statusAddr":"\([^"]*\)".*/\1/p' "$stderr_log" | head -n1)
    [[ -n "$addr" ]] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: perfmap exited before announcing a status address" >&2
        cat "$stderr_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "FAIL: no statusAddr in run.start within 10s" >&2
    cat "$stderr_log" >&2
    exit 1
fi
echo "status server at $addr"

scrape() {
    local path=$1 body code
    body=$(curl -sS -w '\n%{http_code}' "http://$addr$path")
    code=${body##*$'\n'}
    body=${body%$'\n'*}
    if [[ "$code" != 200 ]]; then
        echo "FAIL: GET $path returned $code" >&2
        exit 1
    fi
    if [[ -z "$body" ]]; then
        echo "FAIL: GET $path returned an empty body" >&2
        exit 1
    fi
    echo "$body"
}

metrics=$(scrape /metrics)
if ! grep -q '^adiv_' <<<"$metrics"; then
    echo "FAIL: /metrics has no adiv_ samples:" >&2
    echo "$metrics" >&2
    exit 1
fi
echo "scraped /metrics mid-run ($(grep -c '^adiv_' <<<"$metrics") samples)"

runz=$(scrape /runz)
if ! grep -q '"schema": "adiv.runz/v1"' <<<"$runz"; then
    echo "FAIL: /runz is not a run status document:" >&2
    echo "$runz" >&2
    exit 1
fi
echo "scraped /runz mid-run"
scrape /healthz >/dev/null
echo "scraped /healthz mid-run"

if ! wait "$pid"; then
    echo "FAIL: perfmap run failed" >&2
    cat "$stderr_log" >&2
    exit 1
fi
pid=""
echo "status smoke OK"
