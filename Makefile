# Build/test entry points for the adiv reproduction repo.
#
#   make build   compile every package and command
#   make test    run the full test suite (tier-1 gate)
#   make race    run the suite under the race detector
#   make vet     gofmt check + go vet
#   make bench   run every benchmark once with allocation stats
#   make bench-snapshot   record benchmarks to BENCH_<date>.json
#   make bench-check      compare a fresh run against the latest snapshot;
#                         fails on >10% ns/op regressions or alloc increases

GO ?= go

.PHONY: all build test race vet bench bench-snapshot bench-check clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./...

bench-snapshot:
	./scripts/bench_snapshot.sh

bench-check:
	./scripts/bench_snapshot.sh -check

clean:
	rm -f BENCH_*.json *.pprof m.json
