package adiv_test

import (
	"testing"

	"adiv"
)

// TestPersistenceRoundTrip saves the shared corpus through the public API,
// loads it back, and checks that a detector's performance map is identical
// on the restored data — the property a downstream user relies on when
// archiving an evaluation suite.
func TestPersistenceRoundTrip(t *testing.T) {
	corpus := sharedCorpus(t)
	dir := t.TempDir()
	if _, err := adiv.SaveCorpus(corpus, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := adiv.LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}

	orig := sharedMap(t, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	restored, err := loaded.PerformanceMap(adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	if err != nil {
		t.Fatal(err)
	}
	for size := corpus.Config.MinSize; size <= corpus.Config.MaxSize; size++ {
		for dw := corpus.Config.MinWindow; dw <= corpus.Config.MaxWindow; dw++ {
			if got, want := restored.Outcome(size, dw), orig.Outcome(size, dw); got != want {
				t.Errorf("AS=%d DW=%d: restored %v, original %v", size, dw, got, want)
			}
		}
	}

	// The restored corpus supports the full experiment surface, including
	// anomaly re-injection into fresh data.
	noisy, err := loaded.NoisyStream(4_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loaded.InjectInto(noisy, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.AnomalyLen != 5 {
		t.Errorf("restored InjectInto placement %+v", p)
	}
}
